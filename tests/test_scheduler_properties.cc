// Property-style sweeps over the trace-driven scheduler: invariants that
// must hold for every (policy, medium) combination and across seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "cluster/cluster.h"
#include "scheduler/cluster_scheduler.h"
#include "sim/simulator.h"
#include "trace/google_trace.h"

namespace ckpt {
namespace {

Workload SmallContentiousWorkload(std::uint64_t seed) {
  GoogleTraceConfig config;
  config.sample_jobs = 150;
  config.seed = seed;
  Workload workload = GoogleTraceGenerator(config).GenerateWorkloadSample();
  // Compress arrivals into two hours so the small cluster sees contention.
  for (JobSpec& job : workload.jobs) job.submit_time /= 12;
  return workload;
}

SimulationResult RunWith(const Workload& workload, SchedulerConfig config,
                         int nodes = 6) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(nodes, Resources{16.0, GiB(64)}, config.medium);
  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(workload);
  return scheduler.Run();
}

class PolicyMediaSweep
    : public ::testing::TestWithParam<std::tuple<PreemptionPolicy, MediaKind>> {
};

TEST_P(PolicyMediaSweep, EveryTaskCompletesExactlyOnce) {
  const auto [policy, media] = GetParam();
  const Workload workload = SmallContentiousWorkload(31);
  SchedulerConfig config;
  config.policy = policy;
  config.medium = MediumFor(media);
  const SimulationResult result = RunWith(workload, config);
  EXPECT_EQ(result.tasks_completed, workload.TotalTasks());
  EXPECT_EQ(result.jobs_completed,
            static_cast<std::int64_t>(workload.jobs.size()));
}

TEST_P(PolicyMediaSweep, AccountingIdentitiesHold) {
  const auto [policy, media] = GetParam();
  const Workload workload = SmallContentiousWorkload(32);
  SchedulerConfig config;
  config.policy = policy;
  config.medium = MediumFor(media);
  const SimulationResult result = RunWith(workload, config);

  // Wastage decomposes exactly into lost work + dump/restore overhead.
  EXPECT_NEAR(result.wasted_core_hours,
              result.lost_work_core_hours + result.overhead_core_hours, 1e-6);
  // A preemption is either a kill or a checkpoint.
  EXPECT_EQ(result.preemptions, result.kills + result.checkpoints);
  EXPECT_LE(result.incremental_checkpoints, result.checkpoints);
  // Every restore follows some preemption of that task (a single image can
  // be restored several times if the task keeps getting preempted).
  EXPECT_LE(result.local_restores + result.remote_restores,
            result.preemptions);
  // Busy time covers at least the pure work (it also includes re-execution).
  double work_core_hours = 0;
  for (const JobSpec& job : workload.jobs) {
    for (const TaskSpec& task : job.tasks) {
      work_core_hours += ToHours(task.duration) * task.demand.cpus;
    }
  }
  EXPECT_GE(result.total_busy_core_hours, work_core_hours * 0.999);
}

TEST_P(PolicyMediaSweep, DeterministicAcrossIdenticalRuns) {
  const auto [policy, media] = GetParam();
  const Workload workload = SmallContentiousWorkload(33);
  SchedulerConfig config;
  config.policy = policy;
  config.medium = MediumFor(media);
  const SimulationResult a = RunWith(workload, config);
  const SimulationResult b = RunWith(workload, config);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_DOUBLE_EQ(a.wasted_core_hours, b.wasted_core_hours);
  EXPECT_DOUBLE_EQ(a.energy_kwh, b.energy_kwh);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PolicyMediaSweep,
    ::testing::Combine(::testing::Values(PreemptionPolicy::kWait,
                                         PreemptionPolicy::kKill,
                                         PreemptionPolicy::kCheckpoint,
                                         PreemptionPolicy::kAdaptive),
                       ::testing::Values(MediaKind::kHdd, MediaKind::kSsd,
                                         MediaKind::kNvm)));

// Seed sweep: structural invariants independent of the workload draw.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, WaitPolicyNeverWastes) {
  SchedulerConfig config;
  config.policy = PreemptionPolicy::kWait;
  const SimulationResult result =
      RunWith(SmallContentiousWorkload(GetParam()), config);
  EXPECT_EQ(result.preemptions, 0);
  EXPECT_DOUBLE_EQ(result.wasted_core_hours, 0.0);
}

TEST_P(SeedSweep, CheckpointPolicyLosesWorkOnlyOnCapacityFallback) {
  SchedulerConfig config;
  config.policy = PreemptionPolicy::kCheckpoint;
  config.medium = StorageMedium::Nvm();
  const SimulationResult result =
      RunWith(SmallContentiousWorkload(GetParam()), config);
  // The basic policy always checkpoints; the only kills are device-capacity
  // fallbacks (NVM is small, so they can legitimately occur).
  EXPECT_EQ(result.kills, result.capacity_fallback_kills);
  if (result.capacity_fallback_kills == 0) {
    EXPECT_DOUBLE_EQ(result.lost_work_core_hours, 0.0);
  }
}

TEST_P(SeedSweep, KillWastesAtLeastAsMuchLostWorkAsAdaptive) {
  const Workload workload = SmallContentiousWorkload(GetParam());
  SchedulerConfig kill;
  kill.policy = PreemptionPolicy::kKill;
  kill.medium = StorageMedium::Nvm();
  SchedulerConfig adaptive = kill;
  adaptive.policy = PreemptionPolicy::kAdaptive;
  const SimulationResult kill_result = RunWith(workload, kill);
  const SimulationResult adaptive_result = RunWith(workload, adaptive);
  // On NVM, adaptive converts kills into cheap checkpoints: its re-executed
  // (lost) work cannot exceed kill's.
  EXPECT_LE(adaptive_result.lost_work_core_hours,
            kill_result.lost_work_core_hours + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(SchedulerEdge, EmptyWorkloadTerminates) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(2, Resources{4.0, GiB(8)}, StorageMedium::Ssd());
  ClusterScheduler scheduler(&sim, &cluster, SchedulerConfig{});
  scheduler.Submit(Workload{});
  const SimulationResult result = scheduler.Run();
  EXPECT_EQ(result.tasks_completed, 0);
  EXPECT_EQ(result.makespan, 0);
}

TEST(SchedulerEdge, TaskLargerThanAnyNodeStallsOthersComplete) {
  // A task that can never fit is a workload bug; the scheduler must not
  // wedge the rest of the workload behind it when it is low priority.
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(2, Resources{4.0, GiB(8)}, StorageMedium::Ssd());
  Workload w;
  JobSpec giant;
  giant.id = JobId(0);
  giant.priority = 0;
  TaskSpec task;
  task.id = TaskId(0);
  task.job = giant.id;
  task.duration = Seconds(10);
  task.demand = Resources{64.0, GiB(1)};  // unschedulable
  task.priority = 0;
  giant.tasks.push_back(task);
  w.jobs.push_back(giant);

  JobSpec normal;
  normal.id = JobId(1);
  normal.priority = 5;
  normal.submit_time = Seconds(1);
  TaskSpec small = task;
  small.id = TaskId(1);
  small.job = normal.id;
  small.demand = Resources{2.0, GiB(2)};
  small.priority = 5;
  normal.tasks.push_back(small);
  w.jobs.push_back(normal);

  ClusterScheduler scheduler(&sim, &cluster, SchedulerConfig{});
  scheduler.Submit(w);
  const SimulationResult result = scheduler.Run();
  EXPECT_EQ(result.tasks_completed, 1);  // the normal task
  EXPECT_EQ(result.jobs_completed, 1);
}

TEST(SchedulerEdge, SimultaneousArrivalsResolveByPriority) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(1, Resources{4.0, GiB(8)}, StorageMedium::Nvm());
  Workload w;
  for (int j = 0; j < 3; ++j) {
    JobSpec job;
    job.id = JobId(j);
    job.submit_time = 0;
    job.priority = j * 5;  // 0 (free), 5 (middle), 10 (production)
    TaskSpec task;
    task.id = TaskId(j);
    task.job = job.id;
    task.duration = Seconds(30);
    task.demand = Resources{4.0, GiB(4)};
    task.priority = job.priority;
    job.tasks.push_back(task);
    w.jobs.push_back(job);
  }
  SchedulerConfig config;
  config.policy = PreemptionPolicy::kWait;
  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(w);
  const SimulationResult result = scheduler.Run();
  // Priority 8 runs first (response 30s), then 4 (60s), then 0 (90s).
  EXPECT_NEAR(result.job_response_by_band[2].Mean(), 30.0, 1.0);
  EXPECT_NEAR(result.job_response_by_band[1].Mean(), 60.0, 1.0);
  EXPECT_NEAR(result.job_response_by_band[0].Mean(), 90.0, 1.0);
}

}  // namespace
}  // namespace ckpt
