#include "common/units.h"

#include <gtest/gtest.h>

namespace ckpt {
namespace {

TEST(Units, SecondConversionsRoundTrip) {
  EXPECT_EQ(Seconds(1.0), kSecond);
  EXPECT_EQ(Seconds(0.001), kMillisecond);
  EXPECT_EQ(Minutes(2.0), 2 * kMinute);
  EXPECT_EQ(Hours(1.0), kHour);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMinutes(kMinute), 1.0);
  EXPECT_DOUBLE_EQ(ToHours(kHour), 1.0);
}

TEST(Units, ByteHelpers) {
  EXPECT_EQ(MiB(1), kMiB);
  EXPECT_EQ(GiB(1), kGiB);
  EXPECT_EQ(GiB(2), 2 * kGiB);
  EXPECT_DOUBLE_EQ(ToGiB(kGiB), 1.0);
  EXPECT_DOUBLE_EQ(ToMiB(kMiB), 1.0);
}

TEST(Units, BandwidthHelpersAreDecimal) {
  EXPECT_DOUBLE_EQ(MBps(1), 1e6);
  EXPECT_DOUBLE_EQ(GBps(1), 1e9);
}

TEST(TransferTime, LinearInSize) {
  const SimDuration t1 = TransferTime(MiB(100), MBps(100));
  const SimDuration t2 = TransferTime(MiB(200), MBps(100));
  EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1),
              static_cast<double>(t1) * 0.01);
}

TEST(TransferTime, HundredMegabytesAtHundredMBps) {
  // 100 * 2^20 bytes at 100 MB/s (decimal) is ~1.049 s.
  const SimDuration t = TransferTime(MiB(100), MBps(100));
  EXPECT_NEAR(ToSeconds(t), 1.048576, 0.001);
}

TEST(TransferTime, ZeroSizeIsFree) {
  EXPECT_EQ(TransferTime(0, MBps(10)), 0);
  EXPECT_EQ(TransferTime(-5, MBps(10)), 0);
}

TEST(TransferTime, NeverZeroForPositiveSize) {
  EXPECT_GT(TransferTime(1, GBps(100)), 0);
}

TEST(TransferTime, ZeroBandwidthDoesNotDivide) {
  EXPECT_GT(TransferTime(kMiB, 0.0), kDay);
}

TEST(Format, Duration) {
  EXPECT_EQ(FormatDuration(500), "500us");
  EXPECT_EQ(FormatDuration(Millis(2.5)), "2.50ms");
  EXPECT_EQ(FormatDuration(Seconds(3.25)), "3.25s");
  EXPECT_EQ(FormatDuration(Minutes(2)), "2.00min");
  EXPECT_EQ(FormatDuration(Hours(3)), "3.00h");
}

TEST(Format, Bytes) {
  EXPECT_EQ(FormatBytes(100), "100B");
  EXPECT_EQ(FormatBytes(MiB(3)), "3.0MiB");
  EXPECT_EQ(FormatBytes(GiB(5)), "5.00GiB");
}

TEST(Format, Bandwidth) {
  EXPECT_EQ(FormatBandwidth(MBps(32)), "32.0MB/s");
  EXPECT_EQ(FormatBandwidth(GBps(1.85)), "1.85GB/s");
}

}  // namespace
}  // namespace ckpt
