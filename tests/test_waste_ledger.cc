#include "obs/waste_ledger.h"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/observability.h"
#include "scheduler/cluster_scheduler.h"
#include "service/service_workload.h"
#include "sim/simulator.h"
#include "trace/google_trace.h"

namespace ckpt {
namespace {

TEST(WasteCause, TaxonomyNamesAndUnits) {
  EXPECT_STREQ(WasteCauseName(WasteCause::kKillLostWork), "kill_lost_work");
  EXPECT_STREQ(WasteCauseName(WasteCause::kReReplication), "rereplication");
  EXPECT_TRUE(WasteCauseIsCoreHours(WasteCause::kQueueing));
  EXPECT_FALSE(WasteCauseIsCoreHours(WasteCause::kFaultRetry));
  EXPECT_FALSE(WasteCauseIsCoreHours(WasteCause::kReReplication));
  EXPECT_STREQ(WasteCauseName(WasteCause::kPeriodicDumpOverhead),
               "periodic_dump_overhead");
  EXPECT_STREQ(WasteCauseName(WasteCause::kDumpDeferral), "dump_deferral");
  EXPECT_TRUE(WasteCauseIsCoreHours(WasteCause::kPeriodicDumpOverhead));
  EXPECT_FALSE(WasteCauseIsCoreHours(WasteCause::kDumpDeferral));
  // SLO violation time is seconds of violated service SLO, not core-hours,
  // and must never enter the goodput-gap reconciliation.
  EXPECT_EQ(kNumWasteCauses, 10);
  EXPECT_STREQ(WasteCauseName(WasteCause::kSloViolation), "slo_violation");
  EXPECT_FALSE(WasteCauseIsCoreHours(WasteCause::kSloViolation));
  EXPECT_FALSE(WasteCauseReconciles(WasteCause::kSloViolation));
  // Exactly the five CPU causes that mirror wasted_core_hours reconcile.
  int reconciling = 0;
  for (int c = 0; c < kNumWasteCauses; ++c) {
    if (WasteCauseReconciles(static_cast<WasteCause>(c))) ++reconciling;
  }
  EXPECT_EQ(reconciling, 5);
  EXPECT_FALSE(WasteCauseReconciles(WasteCause::kQueueing));
  EXPECT_FALSE(WasteCauseReconciles(WasteCause::kDumpDeferral));
  EXPECT_TRUE(WasteCauseReconciles(WasteCause::kPeriodicDumpOverhead));
}

TEST(WasteLedger, AddAccumulatesPerCauseAndDimension) {
  WasteLedger ledger;
  ledger.Add(WasteCause::kKillLostWork, 1.5, /*job=*/3, /*node=*/0);
  ledger.Add(WasteCause::kKillLostWork, 0.5, /*job=*/3, /*node=*/1);
  ledger.Add(WasteCause::kDumpOverhead, 0.25, /*job=*/4);
  ledger.Add(WasteCause::kFaultRetry, 12.0);
  EXPECT_EQ(ledger.Total(WasteCause::kKillLostWork), 2.0);
  EXPECT_EQ(ledger.Total(WasteCause::kDumpOverhead), 0.25);
  EXPECT_EQ(ledger.Total(WasteCause::kFaultRetry), 12.0);
  EXPECT_EQ(ledger.ReconcilableCoreHours(), 2.25);  // retry is io-seconds
  EXPECT_EQ(ledger.entries(), 4);
}

TEST(WasteLedger, ZeroChargesAreSkipped) {
  WasteLedger ledger;
  ledger.Add(WasteCause::kQueueing, 0.0, 1, 1);
  EXPECT_EQ(ledger.entries(), 0);
  EXPECT_EQ(ledger.Total(WasteCause::kQueueing), 0.0);
}

TEST(WasteLedger, SnapshotEmitsLabelledSeries) {
  WasteLedger ledger;
  ledger.set_policy("adaptive");
  ledger.Add(WasteCause::kKillLostWork, 2.0, /*job=*/7, /*node=*/3);
  ledger.Add(WasteCause::kReReplication, 4.5, /*job=*/-1, /*node=*/3);
  MetricsRegistry metrics;
  ledger.SnapshotTo(metrics);
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("waste.core_hours"), std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"kill_lost_work\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"adaptive\""), std::string::npos);
  EXPECT_NE(json.find("waste.io_seconds"), std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"rereplication\""), std::string::npos);
  EXPECT_NE(json.find("waste.reconcilable_core_hours"), std::string::npos);
  EXPECT_NE(json.find("waste.by_job.core_hours"), std::string::npos);
  EXPECT_NE(json.find("\"job\":\"7\""), std::string::npos);
  EXPECT_NE(json.find("waste.by_node.io_seconds"), std::string::npos);
  // Untouched causes produce no series.
  EXPECT_EQ(json.find("\"cause\":\"queueing\""), std::string::npos);
}

// End to end: on a congested trace-driven run, the ledger's reconciling
// causes must equal the scheduler's wasted_core_hours (the goodput gap)
// within 1%, and the decision audit stream must be non-empty.
struct LedgerRun {
  SimulationResult result;
  double reconcilable = 0;
  double kill_lost = 0;
  double dump_overhead = 0;
  double restore_transfer = 0;
  std::int64_t audit_records = 0;
};

LedgerRun RunWithLedger(PreemptionPolicy policy) {
  GoogleTraceConfig trace_config;
  trace_config.sample_jobs = 120;
  trace_config.seed = 11;
  const Workload workload =
      GoogleTraceGenerator(trace_config).GenerateWorkloadSample();

  Observability obs;
  Simulator sim;
  Cluster cluster(&sim);
  // Deliberately small so peaks force preemption.
  cluster.AddNodes(2, Resources{16.0, GiB(64)}, StorageMedium::Ssd());
  SchedulerConfig config;
  config.policy = policy;
  config.medium = StorageMedium::Ssd();
  config.obs = &obs;
  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(workload);

  LedgerRun out;
  out.result = scheduler.Run();
  const WasteLedger& ledger = obs.waste();
  out.reconcilable = ledger.ReconcilableCoreHours();
  out.kill_lost = ledger.Total(WasteCause::kKillLostWork);
  out.dump_overhead = ledger.Total(WasteCause::kDumpOverhead);
  out.restore_transfer = ledger.Total(WasteCause::kRestoreTransfer);
  out.audit_records = obs.audit().total_appended();
  return out;
}

TEST(WasteLedgerEndToEnd, KillRunReconcilesWithGoodputGap) {
  const LedgerRun run = RunWithLedger(PreemptionPolicy::kKill);
  ASSERT_GT(run.result.preemptions, 0);
  ASSERT_GT(run.result.wasted_core_hours, 0);
  EXPECT_NEAR(run.reconcilable, run.result.wasted_core_hours,
              0.01 * run.result.wasted_core_hours);
  // All kill waste is lost work; no checkpoint machinery ran.
  EXPECT_NEAR(run.kill_lost, run.result.lost_work_core_hours, 1e-9);
  EXPECT_EQ(run.dump_overhead, 0);
  EXPECT_GT(run.audit_records, 0);
}

TEST(WasteLedgerEndToEnd, AdaptiveRunAttributesOverhead) {
  const LedgerRun run = RunWithLedger(PreemptionPolicy::kAdaptive);
  ASSERT_GT(run.result.preemptions, 0);
  ASSERT_GT(run.result.wasted_core_hours, 0);
  EXPECT_NEAR(run.reconcilable, run.result.wasted_core_hours,
              0.01 * run.result.wasted_core_hours);
  // Dump + restore charges mirror the scheduler's overhead accounting.
  EXPECT_NEAR(run.dump_overhead + run.restore_transfer,
              run.result.overhead_core_hours,
              1e-9 + 0.01 * run.result.overhead_core_hours);
  EXPECT_GT(run.audit_records, 0);
}

// With a colocated service fleet the CPU reconciliation must still close:
// service replicas charge no lost work (they carry none), and the new
// kSloViolation cause is seconds-denominated, so attributed CPU waste keeps
// matching the scheduler's goodput gap exactly as in the batch-only runs.
TEST(WasteLedgerEndToEnd, ServicesKeepCpuReconciliationClosed) {
  GoogleTraceConfig trace_config;
  trace_config.sample_jobs = 120;
  trace_config.seed = 11;
  const Workload workload =
      GoogleTraceGenerator(trace_config).GenerateWorkloadSample();

  ServiceFleetConfig fleet_config;
  fleet_config.services = 2;
  fleet_config.min_replicas = 2;
  fleet_config.max_replicas = 3;
  fleet_config.demand_per_replica = Resources{2.0, GiB(8)};
  fleet_config.end = Hours(6);
  const std::vector<ServiceSpec> fleet = GenerateServiceFleet(fleet_config);

  Observability obs;
  Simulator sim;
  Cluster cluster(&sim);
  // Small enough that batch peaks preempt the colocated replicas too.
  cluster.AddNodes(3, Resources{16.0, GiB(64)}, StorageMedium::Ssd());
  SchedulerConfig config;
  config.policy = PreemptionPolicy::kAdaptive;
  config.medium = StorageMedium::Ssd();
  config.obs = &obs;
  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(workload);
  scheduler.SubmitServices(fleet);
  const SimulationResult result = scheduler.Run();

  ASSERT_GT(result.preemptions, 0);
  ASSERT_GT(result.wasted_core_hours, 0);
  const WasteLedger& ledger = obs.waste();
  // CPU attribution still equals the goodput gap with services running.
  EXPECT_NEAR(ledger.ReconcilableCoreHours(), result.wasted_core_hours,
              0.01 * result.wasted_core_hours);
  // Every violated tick lands in the ledger under the new cause, in
  // seconds, mirroring the scheduler's own accumulator.
  EXPECT_NEAR(ledger.Total(WasteCause::kSloViolation),
              result.slo_violation_seconds,
              1e-9 + 1e-6 * result.slo_violation_seconds);
  EXPECT_EQ(result.slo_violation_seconds,
            result.slo_violation_preempt_seconds +
                result.slo_violation_organic_seconds);
}

}  // namespace
}  // namespace ckpt
