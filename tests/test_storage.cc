#include "storage/storage_device.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace ckpt {
namespace {

TEST(Medium, PresetRatiosMatchPaper) {
  const StorageMedium hdd = StorageMedium::Hdd();
  const StorageMedium ssd = StorageMedium::Ssd();
  const StorageMedium nvm = StorageMedium::Nvm();
  // Fig. 2a: SSD 3-4x faster than HDD, NVM 10-15x faster than SSD.
  const double ssd_vs_hdd = ssd.write_bw / hdd.write_bw;
  const double nvm_vs_ssd = nvm.write_bw / ssd.write_bw;
  EXPECT_GE(ssd_vs_hdd, 3.0);
  EXPECT_LE(ssd_vs_hdd, 4.5);
  EXPECT_GE(nvm_vs_ssd, 10.0);
  EXPECT_LE(nvm_vs_ssd, 15.5);
}

TEST(Medium, Table3FullDumpTimes) {
  // Table 3 first-checkpoint column: 5 GB in ~169 s (HDD), ~44 s (SSD),
  // ~2.9 s (PMFS).
  EXPECT_NEAR(ToSeconds(StorageMedium::Hdd().WriteTime(GiB(5))), 169.0, 10.0);
  EXPECT_NEAR(ToSeconds(StorageMedium::Ssd().WriteTime(GiB(5))), 43.7, 4.0);
  EXPECT_NEAR(ToSeconds(StorageMedium::Nvm().WriteTime(GiB(5))), 2.92, 0.4);
}

TEST(Medium, ReadFasterThanWrite) {
  for (MediaKind kind : {MediaKind::kHdd, MediaKind::kSsd, MediaKind::kNvm}) {
    const StorageMedium m = MediumFor(kind);
    EXPECT_GT(m.read_bw, m.write_bw) << m.name;
  }
}

TEST(Medium, WithBandwidthSymmetric) {
  const StorageMedium m = StorageMedium::WithBandwidth("sweep", GBps(3), GiB(64));
  EXPECT_DOUBLE_EQ(m.write_bw, GBps(3));
  EXPECT_DOUBLE_EQ(m.read_bw, GBps(3));
}

class StorageDeviceTest : public ::testing::Test {
 protected:
  Simulator sim_;
  StorageDevice device_{&sim_, StorageMedium::WithBandwidth("t", MBps(100), GiB(10)),
                        "test"};
};

TEST_F(StorageDeviceTest, WriteCompletesAfterServiceTime) {
  SimTime done_at = -1;
  device_.SubmitWrite(MiB(100), [&](bool ok) {
    EXPECT_TRUE(ok);
    done_at = sim_.Now();
  });
  sim_.Run();
  EXPECT_NEAR(ToSeconds(done_at), 1.048, 0.01);
}

TEST_F(StorageDeviceTest, OperationsAreSerializedFifo) {
  std::vector<int> order;
  SimTime second_done = -1;
  device_.SubmitWrite(MiB(100), [&](bool) { order.push_back(1); });
  device_.SubmitWrite(MiB(100), [&](bool) {
    order.push_back(2);
    second_done = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // Second op waits for the first: ~2x one service time.
  EXPECT_NEAR(ToSeconds(second_done), 2.097, 0.02);
}

TEST_F(StorageDeviceTest, QueueDelayReflectsBacklog) {
  EXPECT_EQ(device_.QueueDelay(), 0);
  device_.SubmitWrite(MiB(200), nullptr);
  const SimDuration delay = device_.QueueDelay();
  EXPECT_NEAR(ToSeconds(delay), 2.097, 0.02);
  sim_.Run();
  EXPECT_EQ(device_.QueueDelay(), 0);
}

TEST_F(StorageDeviceTest, TracksBytesAndBusyTime) {
  device_.SubmitWrite(MiB(10), nullptr);
  device_.SubmitRead(MiB(20), nullptr);
  sim_.Run();
  EXPECT_EQ(device_.total_bytes_written(), MiB(10));
  EXPECT_EQ(device_.total_bytes_read(), MiB(20));
  EXPECT_EQ(device_.ops_completed(), 2);
  EXPECT_GT(device_.total_busy_time(), 0);
}

TEST_F(StorageDeviceTest, ReserveEnforcesCapacity) {
  EXPECT_TRUE(device_.Reserve(GiB(6)));
  EXPECT_FALSE(device_.Reserve(GiB(6)));  // over the 10 GiB capacity
  device_.Release(GiB(6));
  EXPECT_TRUE(device_.Reserve(GiB(6)));
  EXPECT_EQ(device_.used(), GiB(6));
  EXPECT_EQ(device_.peak_used(), GiB(6));
}

TEST_F(StorageDeviceTest, EstimatesIgnoreQueueButIncludeLatency) {
  const StorageMedium hdd = StorageMedium::Hdd();
  Simulator sim;
  StorageDevice device(&sim, hdd, "hdd");
  const SimDuration est = device.EstimateWrite(kMiB);
  EXPECT_GE(est, hdd.access_latency);
  device.SubmitWrite(GiB(1), nullptr);
  // Estimate unchanged by backlog; QueueDelay reports it separately.
  EXPECT_EQ(device.EstimateWrite(kMiB), est);
  EXPECT_GT(device.QueueDelay(), 0);
}

TEST_F(StorageDeviceTest, CancelQueuedOpRollsBackAccountingAndShiftsQueue) {
  // Three 100 MiB writes queue FIFO; cancelling the middle one must (a)
  // never fire its callback, (b) pull the third op's completion earlier,
  // and (c) roll the cancelled op's bytes/busy-time back out.
  bool b_fired = false;
  SimTime c_done = -1;
  device_.SubmitWrite(MiB(100), nullptr);
  device_.SubmitWrite(MiB(100), [&](bool) { b_fired = true; });
  const StorageOpId b = device_.last_op_id();
  device_.SubmitWrite(MiB(100), [&](bool ok) {
    EXPECT_TRUE(ok);
    c_done = sim_.Now();
  });
  EXPECT_TRUE(device_.CancelOp(b));
  sim_.Run();
  EXPECT_FALSE(b_fired);
  // C finishes right behind A — two service times, not three.
  EXPECT_NEAR(ToSeconds(c_done), 2.097, 0.02);
  EXPECT_EQ(device_.total_bytes_written(), MiB(200));
  EXPECT_EQ(device_.ops_completed(), 2);
  EXPECT_NEAR(ToSeconds(device_.total_busy_time()), 2.097, 0.02);
  EXPECT_EQ(device_.QueueDelay(), 0);
}

TEST_F(StorageDeviceTest, CancelInServiceOpSuppressesCompletionOnly) {
  // The op already holds the device, so its service time stays charged;
  // only the callback is suppressed.
  bool fired = false;
  device_.SubmitWrite(MiB(100), [&](bool) { fired = true; });
  const StorageOpId a = device_.last_op_id();
  SimTime b_done = -1;
  device_.SubmitWrite(MiB(100), [&](bool) { b_done = sim_.Now(); });
  EXPECT_TRUE(device_.CancelOp(a));
  sim_.Run();
  EXPECT_FALSE(fired);
  // B still waits out A's full service time.
  EXPECT_NEAR(ToSeconds(b_done), 2.097, 0.02);
  EXPECT_EQ(device_.ops_completed(), 2);
}

TEST_F(StorageDeviceTest, CancelCompletedOrUnknownOpReturnsFalse) {
  device_.SubmitWrite(MiB(10), nullptr);
  const StorageOpId a = device_.last_op_id();
  sim_.Run();
  EXPECT_FALSE(device_.CancelOp(a));
  EXPECT_FALSE(device_.CancelOp(9999));
  // Double-cancel of a queued op: second attempt also returns false.
  device_.SubmitWrite(MiB(10), nullptr);
  device_.SubmitWrite(MiB(10), nullptr);
  const StorageOpId queued = device_.last_op_id();
  EXPECT_TRUE(device_.CancelOp(queued));
  EXPECT_FALSE(device_.CancelOp(queued));
  sim_.Run();
}

TEST(StorageDeviceDeathTest, OverReleaseAborts) {
  Simulator sim;
  StorageDevice device(&sim, StorageMedium::Hdd(), "x");
  ASSERT_TRUE(device.Reserve(kMiB));
  EXPECT_DEATH(device.Release(2 * kMiB), "");
}

}  // namespace
}  // namespace ckpt
