// Shared-bandwidth interference: fair-share pools, the cooperative dump
// scheduler (admission policies, bypass, smallest-first drain, force-admit),
// Young/Daly intervals, receiver-side network charging, and determinism +
// waste-ledger reconciliation of interference-enabled scheduler runs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "checkpoint/dump_scheduler.h"
#include "cluster/cluster.h"
#include "dfs/network.h"
#include "obs/observability.h"
#include "scheduler/cluster_scheduler.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "storage/bandwidth_domain.h"
#include "trace/google_trace.h"

namespace ckpt {
namespace {

// --- BandwidthDomain: processor-sharing pool ------------------------------

TEST(BandwidthDomain, SingleFlowDrainsAtCapacity) {
  Simulator sim;
  BandwidthDomain pool(&sim, "p", MBps(100));
  SimTime done_at = -1;
  pool.StartFlow(MiB(100), [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(ToSeconds(done_at), 1.048, 0.01);
  EXPECT_EQ(pool.flows_completed(), 1);
  EXPECT_EQ(pool.total_bytes(), MiB(100));
}

TEST(BandwidthDomain, EqualFlowsConvergeToFairShare) {
  // N identical flows started together each see capacity/N, so all finish
  // at N times the solo drain time (processor sharing).
  Simulator sim;
  BandwidthDomain pool(&sim, "p", MBps(100));
  constexpr int kFlows = 4;
  std::vector<SimTime> done(kFlows, -1);
  for (int i = 0; i < kFlows; ++i) {
    pool.StartFlow(MiB(100), [&, i] { done[static_cast<size_t>(i)] = sim.Now(); });
  }
  sim.Run();
  for (int i = 0; i < kFlows; ++i) {
    EXPECT_NEAR(ToSeconds(done[static_cast<size_t>(i)]), kFlows * 1.048, 0.05);
  }
  EXPECT_EQ(pool.peak_flows(), kFlows);
  EXPECT_EQ(pool.active_flows(), 0);
}

TEST(BandwidthDomain, LateFlowSlowsTheActiveOne) {
  // Flow A alone for 0.5 s (drains 50 MB of its 104.9 MB), then B joins and
  // both run at 50 MB/s: A's remaining 54.9 MB takes ~1.097 s, after which
  // B's last 50 MB drains alone at full rate.
  Simulator sim;
  BandwidthDomain pool(&sim, "p", MBps(100));
  SimTime a_done = -1, b_done = -1;
  pool.StartFlow(MiB(100), [&] { a_done = sim.Now(); });
  sim.ScheduleAt(Seconds(0.5), [&] {
    pool.StartFlow(MiB(100), [&] { b_done = sim.Now(); });
  });
  sim.Run();
  EXPECT_NEAR(ToSeconds(a_done), 1.597, 0.02);
  EXPECT_NEAR(ToSeconds(b_done), 2.097, 0.02);
}

TEST(BandwidthDomain, EstimateDrainCountsTheJoiningFlow) {
  Simulator sim;
  BandwidthDomain pool(&sim, "p", MBps(100));
  // Idle pool: the hypothetical flow runs alone.
  EXPECT_NEAR(ToSeconds(pool.EstimateDrain(MiB(100))), 1.048, 0.01);
  pool.StartFlow(MiB(100), nullptr);
  // One active flow: the joiner would get capacity/2.
  EXPECT_NEAR(ToSeconds(pool.EstimateDrain(MiB(100))), 2.097, 0.02);
  EXPECT_DOUBLE_EQ(pool.ContentionFactor(), 2.0);
}

// --- Young/Daly interval ---------------------------------------------------

TEST(YoungDaly, MatchesClosedForm) {
  // W = sqrt(2 * C * M): C = 2 s, M = 10 h -> sqrt(2 * 2 * 36000) = 379.47 s.
  const SimDuration w = YoungDalyInterval(Seconds(2), Hours(10));
  EXPECT_NEAR(ToSeconds(w), 379.473, 0.01);
}

TEST(YoungDaly, DegenerateInputsFallBackToMinInterval) {
  EXPECT_EQ(YoungDalyInterval(0, Hours(1), Minutes(2)), Minutes(2));
  EXPECT_EQ(YoungDalyInterval(Seconds(5), 0, Minutes(2)), Minutes(2));
}

TEST(YoungDaly, ClampsBelowMinInterval) {
  // Tiny dump cost drives the optimum under the floor.
  EXPECT_EQ(YoungDalyInterval(Millis(1), Minutes(1), Minutes(2)), Minutes(2));
  // A large optimum is left alone.
  EXPECT_GT(YoungDalyInterval(Minutes(1), Hours(100), kSecond), Hours(1));
}

// --- DumpScheduler admission policies --------------------------------------

class DumpSchedulerTest : public ::testing::Test {
 protected:
  DumpScheduler Make(DumpPolicy policy, int max_concurrent = 2,
                     Bandwidth shared = MBps(100),
                     Bandwidth min_share = MBps(50),
                     SimDuration max_defer = Minutes(10)) {
    DumpSchedulerConfig config;
    config.policy = policy;
    config.max_concurrent = max_concurrent;
    config.shared_bw = shared;
    config.min_share = min_share;
    config.max_defer = max_defer;
    return DumpScheduler(&sim_, config);
  }

  Simulator sim_;
};

TEST_F(DumpSchedulerTest, NaiveAdmitsEverythingImmediately) {
  DumpScheduler sched = Make(DumpPolicy::kNaive);
  int started = 0;
  for (int i = 0; i < 10; ++i) {
    sched.Request(0, i, GiB(1), [&] { ++started; });
  }
  EXPECT_EQ(started, 10);
  EXPECT_EQ(sched.deferred(), 0);
  EXPECT_EQ(sched.active(), 10);
}

TEST_F(DumpSchedulerTest, StaggeredCapsInFlightAndDrainsFifo) {
  DumpScheduler sched = Make(DumpPolicy::kStaggered, /*max_concurrent=*/2);
  std::vector<int> started;
  std::vector<DumpScheduler::Ticket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(sched.Request(0, i, GiB(1), [&, i] { started.push_back(i); }));
  }
  EXPECT_EQ(started, (std::vector<int>{0, 1}));
  EXPECT_EQ(sched.queued(), 3);
  EXPECT_EQ(sched.deferred(), 3);
  sched.Complete(tickets[0]);
  EXPECT_EQ(started, (std::vector<int>{0, 1, 2}));  // FIFO
  EXPECT_EQ(sched.active(), 2);
}

TEST_F(DumpSchedulerTest, AwareCapDerivedFromMinShare) {
  DumpScheduler sched = Make(DumpPolicy::kInterferenceAware, 7,
                             /*shared=*/MBps(100), /*min_share=*/MBps(30));
  // floor(100 / 30) = 3 admitted dumps keep >= 30 MB/s each.
  EXPECT_EQ(sched.AdmissionLimit(), 3);
}

TEST_F(DumpSchedulerTest, SmallDumpsBypassAdmissionUnderAware) {
  // Cap of 1 (min_share == shared capacity); a big dump fills the slot.
  DumpScheduler sched = Make(DumpPolicy::kInterferenceAware, 1, MBps(100),
                             MBps(100));
  bool big2_started = false, small_started = false;
  const auto big1 = sched.Request(0, 1, GiB(1), nullptr);
  const auto big2 =
      sched.Request(0, 2, GiB(1), [&] { big2_started = true; });
  // Below the default 256 MiB bypass threshold: starts despite the full slot.
  const auto small =
      sched.Request(0, 3, MiB(1), [&] { small_started = true; });
  EXPECT_TRUE(small_started);
  EXPECT_FALSE(big2_started);
  EXPECT_EQ(sched.bypassed(), 1);
  EXPECT_EQ(sched.active(), 1);  // bypassed dumps hold no slot
  // Completing the bypassed dump frees nothing; the big dump still waits.
  sched.Complete(small);
  EXPECT_FALSE(big2_started);
  sched.Complete(big1);
  EXPECT_TRUE(big2_started);
  sched.Complete(big2);
}

TEST_F(DumpSchedulerTest, AwareAdmitsSmallestQueuedDumpFirst) {
  DumpScheduler sched = Make(DumpPolicy::kInterferenceAware, 1, MBps(100),
                             MBps(100));
  std::vector<int> started;
  const auto first = sched.Request(0, 0, GiB(1), [&] { started.push_back(0); });
  sched.Request(0, 1, MiB(512), [&] { started.push_back(1); });
  sched.Request(0, 2, MiB(300), [&] { started.push_back(2); });
  ASSERT_EQ(started, (std::vector<int>{0}));
  sched.Complete(first);
  // The 300 MiB dump jumps the 512 MiB one (SJF), unlike FIFO.
  EXPECT_EQ(started, (std::vector<int>{0, 2}));
}

TEST_F(DumpSchedulerTest, ForceAdmitFiresAfterMaxDefer) {
  DumpScheduler sched =
      Make(DumpPolicy::kStaggered, 1, MBps(100), MBps(50), Seconds(5));
  bool second_started = false;
  sched.Request(0, 1, GiB(1), nullptr);  // never completed: slot stays busy
  sched.Request(0, 2, GiB(1), [&] { second_started = true; });
  EXPECT_FALSE(second_started);
  sim_.Run();
  EXPECT_TRUE(second_started);
  EXPECT_EQ(sched.forced(), 1);
  EXPECT_GE(sched.total_defer_time(), Seconds(5));
}

TEST_F(DumpSchedulerTest, CompleteWithdrawsQueuedRequests) {
  DumpScheduler sched = Make(DumpPolicy::kStaggered, 1);
  bool queued_started = false;
  const auto first = sched.Request(0, 1, GiB(1), nullptr);
  const auto queued =
      sched.Request(0, 2, GiB(1), [&] { queued_started = true; });
  sched.Complete(queued);  // the task unwound (e.g. its node died)
  EXPECT_EQ(sched.queued(), 0);
  sched.Complete(first);
  EXPECT_FALSE(queued_started);  // withdrawn requests never start
  EXPECT_EQ(sched.active(), 0);
}

TEST_F(DumpSchedulerTest, CompleteIsIdempotentOnRetiredTickets) {
  DumpScheduler sched = Make(DumpPolicy::kStaggered, 1);
  const auto t = sched.Request(0, 1, GiB(1), nullptr);
  sched.Complete(t);
  EXPECT_EQ(sched.active(), 0);
  sched.Complete(t);  // retired: must not underflow the slot count
  sched.Complete(9999);
  EXPECT_EQ(sched.active(), 0);
}

// --- NetworkModel: receiver charging and loopback accounting ---------------

TEST(NetworkReceiverCharging, IngressSerializesConcurrentSenders) {
  // Two senders target the same receiver. Sender-only charging delivers
  // both a transfer-time apart from t=0; with charge_receiver the second
  // transfer also waits for the receiver's ingress link.
  for (const bool charge : {false, true}) {
    Simulator sim;
    NetworkConfig config;
    config.charge_receiver = charge;
    NetworkModel net(&sim, config);
    for (int i = 0; i < 3; ++i) net.AddNode(NodeId(i));
    SimTime first = -1, second = -1;
    net.Transfer(NodeId(0), NodeId(2), MiB(125), [&] { first = sim.Now(); });
    net.Transfer(NodeId(1), NodeId(2), MiB(125), [&] { second = sim.Now(); });
    sim.Run();
    const double service = ToSeconds(TransferTime(MiB(125), config.link_bw));
    EXPECT_NEAR(ToSeconds(first), service, 0.01);
    if (charge) {
      EXPECT_NEAR(ToSeconds(second), 2 * service, 0.01);
    } else {
      EXPECT_NEAR(ToSeconds(second), service, 0.01);
    }
  }
}

TEST(NetworkLoopback, SameNodeTransferCountsBytes) {
  Simulator sim;
  NetworkModel net(&sim, NetworkConfig{});
  net.AddNode(NodeId(0));
  bool delivered = false;
  net.Transfer(NodeId(0), NodeId(0), MiB(64), [&] { delivered = true; });
  sim.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.total_bytes_transferred(), MiB(64));
}

// --- End to end: determinism and ledger reconciliation ---------------------

SimulationResult RunInterference(int shards, Observability* obs = nullptr) {
  GoogleTraceConfig trace_config;
  trace_config.sample_jobs = 80;
  trace_config.seed = 11;
  const Workload workload =
      GoogleTraceGenerator(trace_config).GenerateWorkloadSample();

  std::unique_ptr<ShardedSimulator> ssim;
  Simulator own_sim;
  if (shards > 0) {
    ShardedSimulator::Options opt;
    opt.workers = shards;
    ssim = std::make_unique<ShardedSimulator>(opt);
  }
  Simulator& sim = ssim != nullptr ? *ssim->coordinator() : own_sim;
  Cluster cluster(&sim);
  // Small on purpose: demand peaks force preemptions and dump storms.
  cluster.AddNodes(2, Resources{16.0, GiB(64)}, StorageMedium::Ssd());

  SchedulerConfig config;
  config.sharded = ssim.get();
  config.policy = PreemptionPolicy::kCheckpoint;
  config.medium = StorageMedium::Ssd();
  config.obs = obs;
  config.interference.enabled = true;
  config.interference.shared_bw = MBps(100);
  config.dump_scheduler.policy = DumpPolicy::kInterferenceAware;
  config.dump_scheduler.min_share = MBps(50);
  config.periodic_ckpt_mtbf = Hours(4);
  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(workload);
  return scheduler.Run();
}

TEST(InterferenceEndToEnd, RunsAreReproducible) {
  const SimulationResult a = RunInterference(/*shards=*/0);
  const SimulationResult b = RunInterference(/*shards=*/0);
  EXPECT_GT(a.periodic_checkpoints, 0);
  EXPECT_GT(a.checkpoints, 0);
  EXPECT_DOUBLE_EQ(a.wasted_core_hours, b.wasted_core_hours);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.periodic_checkpoints, b.periodic_checkpoints);
  EXPECT_EQ(a.dumps_deferred, b.dumps_deferred);
  EXPECT_EQ(a.dump_defer_time, b.dump_defer_time);
}

TEST(InterferenceEndToEnd, ShardedRunIsWorkerCountInvariant) {
  const SimulationResult one = RunInterference(/*shards=*/1);
  const SimulationResult three = RunInterference(/*shards=*/3);
  EXPECT_GT(one.periodic_checkpoints, 0);
  EXPECT_DOUBLE_EQ(one.wasted_core_hours, three.wasted_core_hours);
  EXPECT_EQ(one.makespan, three.makespan);
  EXPECT_EQ(one.periodic_checkpoints, three.periodic_checkpoints);
  EXPECT_EQ(one.dumps_deferred, three.dumps_deferred);
  EXPECT_EQ(one.dump_defer_time, three.dump_defer_time);
}

TEST(InterferenceEndToEnd, LedgerReconcilesWithActualDurationCharging) {
  // With interference on, dump/restore overhead is charged from actual
  // elapsed freeze time; the reconciling causes must still equal the
  // scheduler's goodput gap.
  Observability obs;
  const SimulationResult result = RunInterference(/*shards=*/0, &obs);
  ASSERT_GT(result.wasted_core_hours, 0);
  EXPECT_NEAR(obs.waste().ReconcilableCoreHours(), result.wasted_core_hours,
              0.01 * result.wasted_core_hours);
  EXPECT_GT(obs.waste().Total(WasteCause::kPeriodicDumpOverhead), 0);
}

}  // namespace
}  // namespace ckpt
