// Parameterized DAG shape sweeps: chains, fan-outs, fan-ins and layered
// meshes must all complete under every preemption policy, with conservation
// of per-stage task counts.
#include <gtest/gtest.h>

#include <tuple>

#include "dag/dag.h"

#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "mesos/mesos.h"

namespace ckpt {
namespace {

enum class Shape { kChain, kFanOut, kFanIn, kLayeredMesh };

const char* ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kChain: return "chain";
    case Shape::kFanOut: return "fan-out";
    case Shape::kFanIn: return "fan-in";
    case Shape::kLayeredMesh: return "mesh";
  }
  return "?";
}

DagJobSpec BuildShape(Shape shape, JobId id) {
  DagJobSpec job;
  job.id = id;
  job.priority = 1;
  auto stage = [](int sid, std::vector<int> deps, int tasks) {
    DagStageSpec s;
    s.id = sid;
    s.depends_on = std::move(deps);
    s.num_tasks = tasks;
    s.task_duration = Seconds(20);
    s.output_bytes = MiB(32);
    s.demand = Resources{1.0, GiB(1)};
    return s;
  };
  switch (shape) {
    case Shape::kChain:
      for (int i = 0; i < 5; ++i) {
        job.stages.push_back(
            stage(i, i == 0 ? std::vector<int>{} : std::vector<int>{i - 1}, 2));
      }
      break;
    case Shape::kFanOut:
      job.stages.push_back(stage(0, {}, 2));
      for (int i = 1; i <= 4; ++i) {
        job.stages.push_back(stage(i, {0}, 2));
      }
      break;
    case Shape::kFanIn:
      for (int i = 0; i < 4; ++i) {
        job.stages.push_back(stage(i, {}, 2));
      }
      job.stages.push_back(stage(4, {0, 1, 2, 3}, 2));
      break;
    case Shape::kLayeredMesh:
      // Two layers of two stages each, fully connected between layers, plus
      // a sink.
      job.stages.push_back(stage(0, {}, 2));
      job.stages.push_back(stage(1, {}, 2));
      job.stages.push_back(stage(2, {0, 1}, 2));
      job.stages.push_back(stage(3, {0, 1}, 2));
      job.stages.push_back(stage(4, {2, 3}, 1));
      break;
  }
  return job;
}

int TotalTasks(const DagJobSpec& job) {
  int total = 0;
  for (const DagStageSpec& stage : job.stages) total += stage.num_tasks;
  return total;
}

class DagShapeSweep
    : public ::testing::TestWithParam<std::tuple<Shape, PreemptionPolicy>> {};

TEST_P(DagShapeSweep, CompletesWithConservation) {
  const auto [shape, policy] = GetParam();
  YarnConfig config;
  config.num_nodes = 2;
  config.containers_per_node = 3;  // force multiple waves
  config.policy = policy;
  config.medium = StorageMedium::Nvm();

  std::vector<DagJobSpec> jobs;
  jobs.push_back(BuildShape(shape, JobId(0)));
  // A competing burst stresses preemption for the non-wait policies.
  DagJobSpec burst;
  burst.id = JobId(1);
  burst.submit_time = Seconds(15);
  burst.priority = 9;
  DagStageSpec s;
  s.id = 100;  // distinct from the shaped job's ids: done_by_stage
               // aggregates across jobs by raw stage id
  s.num_tasks = 6;
  s.task_duration = Seconds(25);
  s.demand = Resources{1.0, GiB(1)};
  burst.stages.push_back(s);
  jobs.push_back(burst);

  const DagRunResult result = RunDagWorkload(jobs, config);
  EXPECT_EQ(result.jobs_completed, 2) << ShapeName(shape);
  EXPECT_EQ(result.totals.tasks_done, TotalTasks(jobs[0]) + 6)
      << ShapeName(shape);
  for (const DagStageSpec& stage : jobs[0].stages) {
    EXPECT_EQ(result.totals.done_by_stage.at(stage.id), stage.num_tasks)
        << ShapeName(shape) << " stage " << stage.id;
  }
  if (policy == PreemptionPolicy::kCheckpoint) {
    EXPECT_EQ(result.totals.lost_work, 0) << ShapeName(shape);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DagShapeSweep,
    ::testing::Combine(::testing::Values(Shape::kChain, Shape::kFanOut,
                                         Shape::kFanIn, Shape::kLayeredMesh),
                       ::testing::Values(PreemptionPolicy::kKill,
                                         PreemptionPolicy::kCheckpoint,
                                         PreemptionPolicy::kAdaptive)));

// Weight sweep on the Mesos layer: any weight gap triggers revocation in
// exactly one direction.
class MesosWeightSweep : public ::testing::TestWithParam<int> {};

TEST_P(MesosWeightSweep, OnlyLowerWeightIsRevoked) {
  const int high_weight = GetParam();
  // Weight 1 vs high_weight: see test_mesos.cc for the harness pieces; here
  // a compact inline version suffices.
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(1, Resources{4.0, GiB(8)}, StorageMedium::Nvm());
  NetworkModel net(&sim, NetworkConfig{});
  DfsConfig dfs_config;
  dfs_config.replication = 1;
  DfsCluster dfs(&sim, &net, dfs_config);
  for (Node* node : cluster.nodes()) {
    net.AddNode(node->id());
    dfs.AddDataNode(node->id(), &node->storage());
  }
  DfsStore store(&dfs);
  CheckpointEngine engine(&sim, &store);
  MesosMaster master(&sim, &cluster, MesosConfig{});

  BatchFrameworkConfig low_config;
  low_config.num_tasks = 4;
  low_config.task_duration = Minutes(3);
  low_config.task_demand = Resources{1.0, GiB(2)};
  BatchFramework low(&sim, &master, &engine, "low", low_config, nullptr);
  master.RegisterFramework(&low, 1);
  low.Start();
  sim.Run(Seconds(60));

  BatchFrameworkConfig prod_config = low_config;
  prod_config.task_duration = Seconds(20);
  BatchFramework prod(&sim, &master, &engine, "prod", prod_config, nullptr);
  master.RegisterFramework(&prod, high_weight);
  prod.Start();
  sim.Run();

  EXPECT_TRUE(low.Done());
  EXPECT_TRUE(prod.Done());
  if (high_weight > 1) {
    EXPECT_GT(low.stats().revocations, 0);
  } else {
    EXPECT_EQ(low.stats().revocations, 0);  // equal weight: no revocation
  }
  EXPECT_EQ(prod.stats().revocations, 0);  // never revoked in either case
}

INSTANTIATE_TEST_SUITE_P(Weights, MesosWeightSweep,
                         ::testing::Values(1, 2, 5, 100));

}  // namespace
}  // namespace ckpt
