// Capacity-scheduling mode of the ResourceManager (paper S3.1): two queues
// with guaranteed shares, work-conserving borrowing, and reclaim-by-
// preemption that never digs into a queue's own guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "yarn/resource_manager.h"
#include "yarn/yarn_cluster.h"

namespace ckpt {
namespace {

class RecordingAm : public AppClient {
 public:
  void OnContainerAllocated(const Container& container) override {
    allocated.push_back(container);
  }
  void OnPreemptContainer(ContainerId id) override { preempted.push_back(id); }
  std::vector<Container> allocated;
  std::vector<ContainerId> preempted;
};

class CapacityRmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_nodes = 2;
    config_.containers_per_node = 4;  // 8 slots
    config_.scheduling_mode = SchedulingMode::kCapacity;
    config_.production_guarantee = 0.5;  // 4 production / 4 batch
    config_.policy = PreemptionPolicy::kAdaptive;
    cluster_ = std::make_unique<Cluster>(&sim_);
    cluster_->AddNodes(config_.num_nodes, Resources{4.0, GiB(8)},
                       config_.medium);
    std::vector<NodeManager*> nms;
    for (Node* node : cluster_->nodes()) {
      node_managers_.push_back(std::make_unique<NodeManager>(node));
      nms.push_back(node_managers_.back().get());
    }
    rm_ = std::make_unique<ResourceManager>(&sim_, nms, config_);
  }

  Simulator sim_;
  YarnConfig config_;
  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<NodeManager>> node_managers_;
  std::unique_ptr<ResourceManager> rm_;
};

TEST_F(CapacityRmTest, IdleCapacityIsBorrowable) {
  RecordingAm batch;
  const AppId app = rm_->RegisterApp(&batch, 1);
  rm_->RequestContainers(app, 8);  // beyond the 4-slot batch guarantee
  sim_.Run();
  EXPECT_EQ(batch.allocated.size(), 8u);  // work conservation
}

TEST_F(CapacityRmTest, ProductionReclaimsItsGuaranteeViaPreemption) {
  RecordingAm batch;
  const AppId batch_app = rm_->RegisterApp(&batch, 1);
  rm_->RequestContainers(batch_app, 8);
  sim_.Run();
  ASSERT_EQ(batch.allocated.size(), 8u);

  RecordingAm production;
  const AppId prod_app = rm_->RegisterApp(&production, 10);
  rm_->RequestContainers(prod_app, 4);
  sim_.Run();
  // Production's guarantee is 4: exactly 4 batch containers are asked to
  // vacate (the batch queue keeps its own 4 guaranteed slots).
  EXPECT_EQ(batch.preempted.size(), 4u);

  for (ContainerId id : batch.preempted) rm_->ReleaseContainer(id);
  sim_.Run();
  EXPECT_EQ(production.allocated.size(), 4u);
}

TEST_F(CapacityRmTest, BatchGuaranteeIsNeverPreempted) {
  RecordingAm batch;
  const AppId batch_app = rm_->RegisterApp(&batch, 1);
  rm_->RequestContainers(batch_app, 4);  // exactly the batch guarantee
  sim_.Run();
  ASSERT_EQ(batch.allocated.size(), 4u);

  RecordingAm production;
  const AppId prod_app = rm_->RegisterApp(&production, 10);
  rm_->RequestContainers(prod_app, 8);  // wants more than its guarantee
  sim_.Run();
  // Production fills the 4 free slots; the batch queue is within its own
  // guarantee, so nothing is preempted even though production wants more.
  EXPECT_EQ(production.allocated.size(), 4u);
  EXPECT_TRUE(batch.preempted.empty());
}

TEST_F(CapacityRmTest, BatchCanReclaimFromProductionToo) {
  RecordingAm production;
  const AppId prod_app = rm_->RegisterApp(&production, 10);
  rm_->RequestContainers(prod_app, 8);
  sim_.Run();
  ASSERT_EQ(production.allocated.size(), 8u);

  RecordingAm batch;
  const AppId batch_app = rm_->RegisterApp(&batch, 1);
  rm_->RequestContainers(batch_app, 2);
  sim_.Run();
  // Production holds 4 beyond its guarantee; batch reclaims its share.
  EXPECT_EQ(production.preempted.size(), 2u);
}

TEST_F(CapacityRmTest, DeficitQueueAllocatesFirstOnRelease) {
  RecordingAm batch;
  const AppId batch_app = rm_->RegisterApp(&batch, 1);
  rm_->RequestContainers(batch_app, 8);
  sim_.Run();
  RecordingAm production;
  const AppId prod_app = rm_->RegisterApp(&production, 10);
  rm_->RequestContainers(prod_app, 2);
  // Also queue more batch asks behind production's.
  rm_->RequestContainers(batch_app, 2);
  sim_.Run();
  ASSERT_GE(batch.preempted.size(), 1u);
  for (ContainerId id : batch.preempted) rm_->ReleaseContainer(id);
  sim_.Run();
  // The freed slots go to the under-guarantee production queue, not to the
  // earlier-queued batch asks.
  EXPECT_EQ(production.allocated.size(), 2u);
}

// End-to-end: capacity mode avoids the batch starvation that strict
// priority inflicts when production floods the cluster.
TEST(CapacityEndToEnd, BatchKeepsProgressUnderProductionFlood) {
  auto run = [](SchedulingMode mode) {
    YarnConfig config;
    config.num_nodes = 2;
    config.containers_per_node = 4;
    config.scheduling_mode = mode;
    config.production_guarantee = 0.5;
    config.policy = PreemptionPolicy::kCheckpoint;
    config.medium = StorageMedium::Nvm();
    YarnCluster yarn(config);

    Workload w;
    JobSpec batch;
    batch.id = JobId(0);
    batch.priority = 1;
    for (int i = 0; i < 8; ++i) {
      TaskSpec task;
      task.id = TaskId(i);
      task.job = batch.id;
      task.duration = Seconds(120);
      task.demand = Resources{1.0, MiB(1800)};
      task.priority = 1;
      task.memory_write_rate = 0.02;
      batch.tasks.push_back(task);
    }
    w.jobs.push_back(batch);
    // A stream of production jobs that could occupy the whole cluster
    // indefinitely under strict priority.
    for (int burst = 0; burst < 6; ++burst) {
      JobSpec prod;
      prod.id = JobId(1 + burst);
      prod.submit_time = Seconds(30 + 60 * burst);
      prod.priority = 10;
      for (int i = 0; i < 8; ++i) {
        TaskSpec task;
        task.id = TaskId(100 + burst * 10 + i);
        task.job = prod.id;
        task.duration = Seconds(55);
        task.demand = Resources{1.0, MiB(1800)};
        task.priority = 10;
        prod.tasks.push_back(task);
      }
      w.jobs.push_back(prod);
    }
    const YarnResult result = yarn.RunWorkload(w);
    EXPECT_EQ(result.jobs_completed, 7);
    return result.low_priority_job_responses.Mean();
  };

  const double priority_mode = run(SchedulingMode::kPriority);
  const double capacity_mode = run(SchedulingMode::kCapacity);
  // With a guaranteed share the batch job finishes well before the
  // production flood ends.
  EXPECT_LT(capacity_mode, priority_mode * 0.8);
}

}  // namespace
}  // namespace ckpt
