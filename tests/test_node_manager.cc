#include "yarn/node_manager.h"

#include <gtest/gtest.h>

namespace ckpt {
namespace {

class NodeManagerTest : public ::testing::Test {
 protected:
  Container MakeContainer(std::int64_t id) {
    Container c;
    c.id = ContainerId(id);
    c.node = node_.id();
    c.size = Resources{1.0, GiB(2)};
    c.priority = 1;
    return c;
  }

  Simulator sim_;
  Node node_{&sim_, NodeId(0), Resources{4.0, GiB(8)}, StorageMedium::Ssd()};
  NodeManager nm_{&node_};
};

TEST_F(NodeManagerTest, LaunchConsumesCapacity) {
  EXPECT_TRUE(nm_.LaunchContainer(MakeContainer(1)));
  EXPECT_TRUE(nm_.LaunchContainer(MakeContainer(2)));
  EXPECT_EQ(nm_.live_containers(), 2);
  EXPECT_DOUBLE_EQ(nm_.Available().cpus, 2.0);
}

TEST_F(NodeManagerTest, LaunchFailsWhenFull) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(nm_.LaunchContainer(MakeContainer(i)));
  }
  EXPECT_FALSE(nm_.LaunchContainer(MakeContainer(99)));
  EXPECT_EQ(nm_.live_containers(), 4);
}

TEST_F(NodeManagerTest, StopReturnsCapacity) {
  ASSERT_TRUE(nm_.LaunchContainer(MakeContainer(1)));
  nm_.StopContainer(ContainerId(1));
  EXPECT_EQ(nm_.live_containers(), 0);
  EXPECT_DOUBLE_EQ(nm_.Available().cpus, 4.0);
  EXPECT_FALSE(nm_.IsLive(ContainerId(1)));
}

TEST_F(NodeManagerTest, SuspendStopsCpuAccounting) {
  ASSERT_TRUE(nm_.LaunchContainer(MakeContainer(1)));
  EXPECT_DOUBLE_EQ(node_.active_cpus(), 1.0);
  nm_.SuspendContainer(ContainerId(1));
  EXPECT_DOUBLE_EQ(node_.active_cpus(), 0.0);
  // Allocation stays reserved while suspended.
  EXPECT_DOUBLE_EQ(node_.Available().cpus, 3.0);
  nm_.ResumeContainer(ContainerId(1));
  EXPECT_DOUBLE_EQ(node_.active_cpus(), 1.0);
}

TEST_F(NodeManagerTest, SuspendIsIdempotent) {
  ASSERT_TRUE(nm_.LaunchContainer(MakeContainer(1)));
  nm_.SuspendContainer(ContainerId(1));
  nm_.SuspendContainer(ContainerId(1));  // no double-decrement
  EXPECT_DOUBLE_EQ(node_.active_cpus(), 0.0);
  nm_.ResumeContainer(ContainerId(1));
  nm_.ResumeContainer(ContainerId(1));  // no double-increment
  EXPECT_DOUBLE_EQ(node_.active_cpus(), 1.0);
}

TEST_F(NodeManagerTest, StopWhileSuspendedKeepsAccountingConsistent) {
  ASSERT_TRUE(nm_.LaunchContainer(MakeContainer(1)));
  ASSERT_TRUE(nm_.LaunchContainer(MakeContainer(2)));
  nm_.SuspendContainer(ContainerId(1));
  nm_.StopContainer(ContainerId(1));  // released while frozen
  EXPECT_DOUBLE_EQ(node_.Available().cpus, 3.0);
  EXPECT_DOUBLE_EQ(node_.active_cpus(), 1.0);  // container 2 still active
  nm_.StopContainer(ContainerId(2));
  EXPECT_DOUBLE_EQ(node_.active_cpus(), 0.0);
  EXPECT_DOUBLE_EQ(node_.Available().cpus, 4.0);
}

TEST_F(NodeManagerTest, FrozenContainerBurnsNoEnergyAboveIdle) {
  ASSERT_TRUE(nm_.LaunchContainer(MakeContainer(1)));
  nm_.SuspendContainer(ContainerId(1));
  sim_.ScheduleAt(Hours(1), [] {});
  sim_.Run();
  node_.SyncEnergy();
  // One hour fully suspended: idle floor only.
  const double idle_kwh = PowerModel{}.idle_watts / 1000.0;
  EXPECT_NEAR(node_.EnergyKwh(), idle_kwh, 1e-6);
  EXPECT_EQ(node_.BusyCoreTime(), 0);
}

TEST(NodeManagerDeathTest, StopUnknownContainerAborts) {
  Simulator sim;
  Node node(&sim, NodeId(0), Resources{4.0, GiB(8)}, StorageMedium::Ssd());
  NodeManager nm(&node);
  EXPECT_DEATH(nm.StopContainer(ContainerId(404)), "unknown container");
}

}  // namespace
}  // namespace ckpt
