#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace ckpt {
namespace {

TEST(SimCallback, InvokesInlineCapture) {
  int fired = 0;
  SimCallback cb([&fired] { ++fired; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  EXPECT_EQ(fired, 1);
}

TEST(SimCallback, MoveTransfersOwnership) {
  int fired = 0;
  SimCallback a([&fired] { ++fired; });
  SimCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
}

// One capture below the inline limit, one above: both must run and both must
// destroy their captured state exactly once (shared_ptr use_count proves it).
TEST(SimCallback, InlineAndHeapCapturesDestroyState) {
  auto token = std::make_shared<int>(7);

  struct SmallCapture {
    std::shared_ptr<int> token;
    void operator()() const { *token += 1; }
  };
  static_assert(sizeof(SmallCapture) <= SimCallback::kInlineSize);

  struct BigCapture {
    std::shared_ptr<int> token;
    char pad[SimCallback::kInlineSize];
    void operator()() const { *token += 10; }
  };
  static_assert(sizeof(BigCapture) > SimCallback::kInlineSize);

  {
    SimCallback small(SmallCapture{token});
    SimCallback big(BigCapture{token, {}});
    EXPECT_EQ(token.use_count(), 3);
    small();
    big();
    EXPECT_EQ(*token, 18);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SimCallback, ResetDestroysWithoutInvoking) {
  auto token = std::make_shared<int>(0);
  SimCallback cb([token] { *token = 1; });
  EXPECT_EQ(token.use_count(), 2);
  cb.Reset();
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_EQ(*token, 0);
}

TEST(EventQueue, PopsInWhenThenSeqOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(20, [&order] { order.push_back(2); });
  queue.Push(10, [&order] { order.push_back(0); });
  queue.Push(10, [&order] { order.push_back(1); });
  while (EventNode* node = queue.PopLive()) {
    node->cb();
    queue.Recycle(node);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelRetiresPendingEventOnce) {
  EventQueue queue;
  int fired = 0;
  EventHandle handle = queue.Push(5, [&fired] { ++fired; });
  queue.Push(6, [&fired] { fired += 10; });
  EXPECT_EQ(queue.size(), 2);
  EXPECT_TRUE(queue.Cancel(handle));
  EXPECT_FALSE(queue.Cancel(handle));  // second cancel is a no-op
  EXPECT_EQ(queue.size(), 1);

  EventNode* node = queue.PopLive();
  ASSERT_NE(node, nullptr);
  node->cb();
  queue.Recycle(node);
  EXPECT_EQ(queue.PopLive(), nullptr);
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, CancelAfterFireIsRejected) {
  EventQueue queue;
  EventHandle handle = queue.Push(1, [] {});
  EventNode* node = queue.PopLive();
  ASSERT_NE(node, nullptr);
  queue.Recycle(node);
  EXPECT_FALSE(queue.Cancel(handle));
}

// A recycled node must not be cancelable through a stale handle to the
// event that previously occupied it (seq doubles as the generation).
TEST(EventQueue, StaleHandleCannotTouchRecycledNode) {
  EventQueue queue;
  EventHandle stale = queue.Push(1, [] {});
  EventNode* node = queue.PopLive();
  ASSERT_EQ(node, stale.node);
  queue.Recycle(node);

  int fired = 0;
  queue.Push(2, [&fired] { ++fired; });  // reuses the pooled node
  EXPECT_FALSE(queue.Cancel(stale));
  EventNode* reused = queue.PopLive();
  ASSERT_NE(reused, nullptr);
  reused->cb();
  queue.Recycle(reused);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelDestroysCallbackEagerly) {
  auto token = std::make_shared<int>(0);
  EventQueue queue;
  EventHandle handle = queue.Push(1, [token] { *token = 1; });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(queue.Cancel(handle));
  EXPECT_EQ(token.use_count(), 1);  // destroyed before the entry surfaces
}

TEST(EventQueue, DestructorReleasesPendingCallbacks) {
  auto token = std::make_shared<int>(0);
  {
    EventQueue queue;
    for (int i = 0; i < 100; ++i) queue.Push(i, [token] {});
    EXPECT_EQ(token.use_count(), 101);
  }
  EXPECT_EQ(token.use_count(), 1);
}

// Property test: against a reference priority_queue with the seed's
// (when, seq) comparator, a seeded random mix of pushes, cancels, and pops
// must yield the exact same event order. 10k events crosses many slab
// boundaries and exercises deep sift paths.
TEST(EventQueue, MatchesReferenceHeapOnRandomWorkload) {
  struct RefEvent {
    SimTime when;
    std::int64_t seq;
    int id;
  };
  struct Later {
    bool operator()(const RefEvent& a, const RefEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Rng rng(20260805);
  EventQueue queue;
  std::priority_queue<RefEvent, std::vector<RefEvent>, Later> reference;
  std::vector<char> canceled_ids;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  std::int64_t next_seq = 0;

  const int kEvents = 10000;
  for (int id = 0; id < kEvents; ++id) {
    // Clustered timestamps force plenty of same-when ties.
    const SimTime when = rng.UniformInt(0, 500);
    fired.reserve(static_cast<size_t>(kEvents));
    handles.push_back(queue.Push(when, [&fired, id] { fired.push_back(id); }));
    reference.push(RefEvent{when, next_seq++, id});
    canceled_ids.push_back(0);

    // Occasionally cancel a random earlier event (possibly already
    // canceled) or drain a couple of events mid-stream.
    if (rng.UniformInt(0, 9) == 0) {
      const int victim = static_cast<int>(rng.UniformInt(0, id));
      const bool was_pending =
          queue.Cancel(handles[static_cast<size_t>(victim)]);
      if (was_pending) canceled_ids[static_cast<size_t>(victim)] = 1;
    }
  }

  std::vector<int> expected;
  while (!reference.empty()) {
    const RefEvent event = reference.top();
    reference.pop();
    if (!canceled_ids[static_cast<size_t>(event.id)]) {
      expected.push_back(event.id);
    }
  }

  while (EventNode* node = queue.PopLive()) {
    node->cb();
    queue.Recycle(node);
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(fired, expected);
}

}  // namespace
}  // namespace ckpt
