#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include "metrics/report.h"
#include "obs/observability.h"

namespace ckpt {
namespace {

TEST(Counter, IncrementAndDelta) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("requests");
  EXPECT_EQ(c->value(), 0);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->value(), 42);
}

TEST(Gauge, SetAddMax) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("queue_depth");
  g->Set(3.0);
  g->Add(2.0);
  EXPECT_DOUBLE_EQ(g->value(), 5.0);
  g->Max(4.0);  // lower than current: no-op
  EXPECT_DOUBLE_EQ(g->value(), 5.0);
  g->Max(7.5);
  EXPECT_DOUBLE_EQ(g->value(), 7.5);
}

TEST(Histogram, BucketsAndQuantiles) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("latency", {}, {1.0, 10.0, 100.0});
  for (double x : {0.5, 0.9, 5.0, 50.0, 500.0}) h->Observe(x);
  EXPECT_EQ(h->count(), 5);
  EXPECT_DOUBLE_EQ(h->sum(), 556.4);
  ASSERT_EQ(h->counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h->counts()[0], 2);      // <= 1.0
  EXPECT_EQ(h->counts()[1], 1);      // <= 10.0
  EXPECT_EQ(h->counts()[2], 1);      // <= 100.0
  EXPECT_EQ(h->counts()[3], 1);      // overflow
  EXPECT_DOUBLE_EQ(h->stats().Min(), 0.5);
  EXPECT_DOUBLE_EQ(h->stats().Max(), 500.0);
}

TEST(Histogram, EmptySnapshotIsSafeAndValidJson) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("empty", {}, {1.0, 10.0});
  EXPECT_EQ(h->count(), 0);
  const std::string json = reg.ToJson();
  // Zero-count histograms still serialize with zeroed quantiles instead of
  // NaN/garbage, so downstream JSON parsers never choke.
  EXPECT_NE(json.find("\"count\":0"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":0"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":0"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":0"), std::string::npos);
}

TEST(Histogram, SingleSampleQuantilesCollapse) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("one", {}, {1.0, 10.0});
  h->Observe(7.5);
  EXPECT_DOUBLE_EQ(h->stats().Quantile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(h->stats().Quantile(0.95), 7.5);
  EXPECT_DOUBLE_EQ(h->stats().Quantile(0.99), 7.5);
  EXPECT_DOUBLE_EQ(h->stats().Min(), 7.5);
  EXPECT_DOUBLE_EQ(h->stats().Max(), 7.5);
}

TEST(Histogram, AllSamplesInOverflowBucket) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("over", {}, {1.0, 2.0});
  for (double x : {100.0, 200.0, 300.0}) h->Observe(x);
  ASSERT_EQ(h->counts().size(), 3u);
  EXPECT_EQ(h->counts()[0], 0);
  EXPECT_EQ(h->counts()[1], 0);
  EXPECT_EQ(h->counts()[2], 3);  // everything past the last bound
  EXPECT_DOUBLE_EQ(h->stats().Quantile(0.5), 200.0);
  EXPECT_DOUBLE_EQ(h->stats().Max(), 300.0);
}

TEST(Histogram, QuantilesAreMonotone) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("mono", {}, {1.0, 10.0, 100.0});
  // Deterministic skewed spread across all buckets.
  for (int i = 1; i <= 200; ++i) h->Observe((i * 37) % 113 + 0.5);
  const double p50 = h->stats().Quantile(0.5);
  const double p95 = h->stats().Quantile(0.95);
  const double p99 = h->stats().Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h->stats().Min());
  EXPECT_LE(p99, h->stats().Max());
}

TEST(MetricsRegistry, SameSeriesReturnsSameHandle) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("ops", {{"node", "1"}});
  Counter* b = reg.GetCounter("ops", {{"node", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("ops", {{"node", "1"}});
  Counter* b = reg.GetCounter("ops", {{"node", "2"}});
  Counter* c = reg.GetCounter("ops", {{"node", "1"}, {"op", "save"}});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, HandlesStableAcrossLaterRegistrations) {
  MetricsRegistry reg;
  Counter* first = reg.GetCounter("ops", {{"node", "1"}});
  first->Inc(5);
  // Interleave many registrations, then look the original up again.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("other", {{"i", std::to_string(i)}})->Inc();
  }
  Counter* again = reg.GetCounter("ops", {{"node", "1"}});
  EXPECT_EQ(first, again);
  EXPECT_EQ(again->value(), 5);
}

TEST(MetricsRegistry, SeriesKeyCanonicalForm) {
  EXPECT_EQ(MetricsRegistry::SeriesKey("ops", {}), "ops{}");
  EXPECT_EQ(MetricsRegistry::SeriesKey("ops", {{"a", "1"}, {"b", "2"}}),
            "ops{a=1,b=2}");
}

TEST(MetricsRegistry, KindMismatchDies) {
  MetricsRegistry reg;
  reg.GetCounter("x");
  EXPECT_DEATH(reg.GetGauge("x"), "x");
}

TEST(MetricsRegistry, JsonSnapshotIsDeterministic) {
  auto build = [](MetricsRegistry& reg, bool reversed) {
    // Register in different orders; the snapshot must not care.
    if (reversed) {
      reg.GetGauge("b_gauge")->Set(1.5);
      reg.GetCounter("a_count", {{"node", "2"}})->Inc(7);
    } else {
      reg.GetCounter("a_count", {{"node", "2"}})->Inc(7);
      reg.GetGauge("b_gauge")->Set(1.5);
    }
    reg.GetHistogram("c_hist", {}, {1.0, 2.0})->Observe(1.5);
  };
  MetricsRegistry r1, r2;
  build(r1, false);
  build(r2, true);
  EXPECT_EQ(r1.ToJson(), r2.ToJson());
  const std::string json = r1.ToJson();
  EXPECT_NE(json.find("\"name\":\"a_count\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"2\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  // a_count sorts before b_gauge sorts before c_hist.
  EXPECT_LT(json.find("a_count"), json.find("b_gauge"));
  EXPECT_LT(json.find("b_gauge"), json.find("c_hist"));
}

TEST(MetricsRegistry, TableRowsRenderable) {
  MetricsRegistry reg;
  reg.GetCounter("ckpt.dump.count", {{"node", "0"}})->Inc(3);
  reg.GetHistogram("ckpt.dump.seconds", {{"node", "0"}}, {1.0, 10.0})
      ->Observe(2.5);
  const auto rows = reg.ToTableRows();
  ASSERT_EQ(rows.size(), 3u);  // header + 2 series
  EXPECT_EQ(rows[0][0], "metric");
  // Must be consumable by the benches' table renderer.
  const std::string table = RenderTable(rows);
  EXPECT_NE(table.find("ckpt.dump.count"), std::string::npos);
  EXPECT_NE(table.find("node=0"), std::string::npos);
}

TEST(Observability, NodeNaming) {
  EXPECT_EQ(Observability::NodeTrack(NodeId(3)), "node/3");
  EXPECT_EQ(Observability::NodeLabel(NodeId(3)), "3");
}

}  // namespace
}  // namespace ckpt
