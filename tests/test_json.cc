#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ckpt {
namespace {

TEST(JsonFormatNumber, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(json::FormatNumber(0), "0");
  EXPECT_EQ(json::FormatNumber(42), "42");
  EXPECT_EQ(json::FormatNumber(-7), "-7");
  EXPECT_EQ(json::FormatNumber(1e12), "1000000000000");
}

TEST(JsonFormatNumber, FractionsRoundTripTo15Digits) {
  // 15 significant digits: exact dyadic fractions round-trip exactly,
  // anything finer agrees to 1 ulp-at-15-digits.
  EXPECT_EQ(std::stod(json::FormatNumber(3.25)), 3.25);
  EXPECT_EQ(std::stod(json::FormatNumber(0.5)), 0.5);
  const double v = 0.1 + 0.2;
  EXPECT_NEAR(std::stod(json::FormatNumber(v)), v, 1e-15);
}

TEST(JsonFormatNumber, NonFiniteBecomesZero) {
  EXPECT_EQ(json::FormatNumber(std::nan("")), "0");
  EXPECT_EQ(json::FormatNumber(INFINITY), "0");
}

TEST(JsonEscape, ControlCharactersAndQuotes) {
  EXPECT_EQ(json::Escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json::Escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(JsonParse, ScalarsAndNesting) {
  std::string error;
  json::ValuePtr doc = json::Parse(
      R"({"name":"x","n":3.5,"ok":true,"nil":null,"arr":[1,2],"obj":{"k":"v"}})",
      &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->StringOr("name", ""), "x");
  EXPECT_EQ(doc->NumberOr("n", 0), 3.5);
  ASSERT_NE(doc->Find("ok"), nullptr);
  EXPECT_TRUE(doc->Find("ok")->as_bool());
  EXPECT_TRUE(doc->Find("nil")->is_null());
  ASSERT_TRUE(doc->Find("arr")->is_array());
  EXPECT_EQ(doc->Find("arr")->items().size(), 2u);
  EXPECT_EQ(doc->Find("obj")->StringOr("k", ""), "v");
}

TEST(JsonParse, StringEscapes) {
  std::string error;
  json::ValuePtr doc = json::Parse(R"(["a\"b", "Aé", "\n\t"])",
                                   &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->items()[0]->as_string(), "a\"b");
  EXPECT_EQ(doc->items()[1]->as_string(), "A\xc3\xa9");  // UTF-8 for A, é
  EXPECT_EQ(doc->items()[2]->as_string(), "\n\t");
}

TEST(JsonParse, NegativeAndExponentNumbers) {
  std::string error;
  json::ValuePtr doc = json::Parse("[-1.5, 2e3, 0.25]", &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->items()[0]->as_number(), -1.5);
  EXPECT_EQ(doc->items()[1]->as_number(), 2000.0);
  EXPECT_EQ(doc->items()[2]->as_number(), 0.25);
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1}garbage"}) {
    std::string error;
    EXPECT_EQ(json::Parse(bad, &error), nullptr) << bad;
    EXPECT_FALSE(error.empty()) << bad;
    EXPECT_NE(error.find("offset"), std::string::npos) << error;
  }
}

TEST(JsonParse, DuplicateKeysKeepLast) {
  std::string error;
  json::ValuePtr doc = json::Parse(R"({"a":1,"a":2})", &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->NumberOr("a", 0), 2.0);
  EXPECT_EQ(doc->members().size(), 1u);
}

TEST(JsonParse, RoundTripsWriterOutput) {
  // The exact shape MetricsRegistry emits for a histogram series.
  const std::string text =
      R"({"metrics":[{"name":"h","labels":{"op":"dump"},"type":"histogram",)"
      R"("count":3,"sum":6.5,"p50":2,"p95":3.5,"p99":3.5,)"
      R"("bounds":[1,10],"bucket_counts":[1,2,0]}]})";
  std::string error;
  json::ValuePtr doc = json::Parse(text, &error);
  ASSERT_NE(doc, nullptr) << error;
  const json::Value* metrics = doc->Find("metrics");
  ASSERT_TRUE(metrics != nullptr && metrics->is_array());
  const json::Value& entry = *metrics->items()[0];
  EXPECT_EQ(entry.StringOr("type", ""), "histogram");
  EXPECT_EQ(entry.NumberOr("p95", 0), 3.5);
  EXPECT_EQ(entry.Find("labels")->StringOr("op", ""), "dump");
  EXPECT_EQ(entry.Find("bucket_counts")->items().size(), 3u);
}

}  // namespace
}  // namespace ckpt
