#include "checkpoint/checkpoint_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace ckpt {
namespace {

class LocalStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 2; ++i) {
      devices_.push_back(std::make_unique<StorageDevice>(
          &sim_, StorageMedium::Ssd(), "d" + std::to_string(i)));
      store_.AddNode(NodeId(i), devices_.back().get());
    }
  }

  bool SaveSync(const std::string& path, Bytes size, NodeId node) {
    bool ok = false;
    store_.Save(path, size, node, [&](bool s) { ok = s; });
    sim_.Run();
    return ok;
  }

  Simulator sim_;
  std::vector<std::unique_ptr<StorageDevice>> devices_;
  LocalStore store_;
};

TEST_F(LocalStoreTest, SaveThenLoadOnSameNode) {
  ASSERT_TRUE(SaveSync("/img", MiB(64), NodeId(0)));
  EXPECT_TRUE(store_.Exists("/img"));
  EXPECT_EQ(store_.StoredSize("/img"), MiB(64));
  bool ok = false;
  store_.Load("/img", NodeId(0), [&](bool l) { ok = l; });
  sim_.Run();
  EXPECT_TRUE(ok);
}

TEST_F(LocalStoreTest, RemoteLoadFails) {
  ASSERT_TRUE(SaveSync("/img", MiB(64), NodeId(0)));
  bool ok = true;
  store_.Load("/img", NodeId(1), [&](bool l) { ok = l; });
  sim_.Run();
  EXPECT_FALSE(ok);  // CRIU's local-only limitation
  EXPECT_FALSE(store_.SupportsRemoteRestore());
}

TEST_F(LocalStoreTest, AppendGrowsImage) {
  ASSERT_TRUE(SaveSync("/img", MiB(64), NodeId(0)));
  bool ok = false;
  store_.Append("/img", MiB(8), NodeId(0), [&](bool a) { ok = a; });
  sim_.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(store_.StoredSize("/img"), MiB(72));
}

TEST_F(LocalStoreTest, AppendFromOtherNodeFails) {
  ASSERT_TRUE(SaveSync("/img", MiB(64), NodeId(0)));
  bool ok = true;
  store_.Append("/img", MiB(8), NodeId(1), [&](bool a) { ok = a; });
  sim_.Run();
  EXPECT_FALSE(ok);
}

TEST_F(LocalStoreTest, RemoveReleasesCapacity) {
  ASSERT_TRUE(SaveSync("/img", GiB(1), NodeId(0)));
  EXPECT_EQ(devices_[0]->used(), GiB(1));
  EXPECT_TRUE(store_.Remove("/img"));
  EXPECT_EQ(devices_[0]->used(), 0);
  EXPECT_FALSE(store_.Exists("/img"));
}

TEST_F(LocalStoreTest, CapacityOverflowFailsSave) {
  // SSD preset is 120 GiB.
  ASSERT_TRUE(SaveSync("/a", GiB(100), NodeId(0)));
  EXPECT_FALSE(SaveSync("/b", GiB(30), NodeId(0)));
  EXPECT_TRUE(SaveSync("/c", GiB(30), NodeId(1)));  // other node has room
}

TEST_F(LocalStoreTest, IsLocalToMatchesOwner) {
  ASSERT_TRUE(SaveSync("/img", kMiB, NodeId(1)));
  EXPECT_TRUE(store_.IsLocalTo("/img", NodeId(1)));
  EXPECT_FALSE(store_.IsLocalTo("/img", NodeId(0)));
}

TEST_F(LocalStoreTest, EstimateLoadRemoteIsUnreachable) {
  ASSERT_TRUE(SaveSync("/img", kMiB, NodeId(0)));
  EXPECT_LT(store_.EstimateLoadBytes(kMiB, NodeId(0), true), Seconds(1));
  EXPECT_GE(store_.EstimateLoadBytes(kMiB, NodeId(1), false),
            Simulator::kMaxTime);
}

class DfsStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<NetworkModel>(&sim_, NetworkConfig{});
    DfsConfig config;
    config.replication = 2;
    dfs_ = std::make_unique<DfsCluster>(&sim_, net_.get(), config);
    for (int i = 0; i < 3; ++i) {
      net_->AddNode(NodeId(i));
      devices_.push_back(std::make_unique<StorageDevice>(
          &sim_, StorageMedium::Ssd(), "dn" + std::to_string(i)));
      dfs_->AddDataNode(NodeId(i), devices_.back().get());
    }
    store_ = std::make_unique<DfsStore>(dfs_.get());
  }

  bool SaveSync(const std::string& path, Bytes size, NodeId node) {
    bool ok = false;
    store_->Save(path, size, node, [&](bool s) { ok = s; });
    sim_.Run();
    return ok;
  }

  Simulator sim_;
  std::unique_ptr<NetworkModel> net_;
  std::vector<std::unique_ptr<StorageDevice>> devices_;
  std::unique_ptr<DfsCluster> dfs_;
  std::unique_ptr<DfsStore> store_;
};

TEST_F(DfsStoreTest, SupportsRemoteRestore) {
  ASSERT_TRUE(SaveSync("/img", MiB(64), NodeId(0)));
  EXPECT_TRUE(store_->SupportsRemoteRestore());
  bool ok = false;
  store_->Load("/img", NodeId(2), [&](bool l) { ok = l; });
  sim_.Run();
  EXPECT_TRUE(ok);
}

TEST_F(DfsStoreTest, AppendCreatesLayersFoldedIntoSizeAndLoad) {
  ASSERT_TRUE(SaveSync("/img", MiB(100), NodeId(0)));
  bool ok = false;
  store_->Append("/img", MiB(10), NodeId(0), [&](bool a) { ok = a; });
  sim_.Run();
  ASSERT_TRUE(ok);
  store_->Append("/img", MiB(5), NodeId(1), [&](bool a) { ok = a; });
  sim_.Run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(store_->StoredSize("/img"), MiB(115));

  bool loaded = false;
  store_->Load("/img", NodeId(0), [&](bool l) { loaded = l; });
  sim_.Run();
  EXPECT_TRUE(loaded);
}

TEST_F(DfsStoreTest, LayerCountersAreIndependentPerImage) {
  ASSERT_TRUE(SaveSync("/a", kMiB, NodeId(0)));
  ASSERT_TRUE(SaveSync("/b", kMiB, NodeId(1)));
  bool ok = false;
  store_->Append("/b", kMiB, NodeId(1), [&](bool a) { ok = a; });
  sim_.Run();
  ASSERT_TRUE(ok);
  store_->Append("/a", kMiB, NodeId(0), [&](bool a) { ok = a; });
  sim_.Run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(store_->StoredSize("/a"), 2 * kMiB);
  EXPECT_EQ(store_->StoredSize("/b"), 2 * kMiB);
}

TEST_F(DfsStoreTest, RemoveDeletesBaseAndLayers) {
  ASSERT_TRUE(SaveSync("/img", MiB(10), NodeId(0)));
  bool ok = false;
  store_->Append("/img", MiB(1), NodeId(0), [&](bool a) { ok = a; });
  sim_.Run();
  ASSERT_TRUE(ok);
  EXPECT_TRUE(store_->Remove("/img"));
  EXPECT_FALSE(store_->Exists("/img"));
  EXPECT_EQ(dfs_->total_stored(), 0);
}

TEST_F(DfsStoreTest, AppendWithoutBaseFails) {
  bool ok = true;
  store_->Append("/missing", kMiB, NodeId(0), [&](bool a) { ok = a; });
  sim_.Run();
  EXPECT_FALSE(ok);
}

TEST_F(DfsStoreTest, IsLocalToFollowsReplicas) {
  ASSERT_TRUE(SaveSync("/img", MiB(16), NodeId(1)));
  EXPECT_TRUE(store_->IsLocalTo("/img", NodeId(1)));
}

}  // namespace
}  // namespace ckpt
