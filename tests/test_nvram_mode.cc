// NVRAM-as-virtual-memory extensions (paper S3.2.3): shadow buffering and
// lazy copy-on-touch restore on the byte-addressable NVRAM medium.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "scheduler/cluster_scheduler.h"
#include "sim/simulator.h"

namespace ckpt {
namespace {

Workload TwoJobWorkload() {
  Workload w;
  JobSpec low;
  low.id = JobId(0);
  low.priority = 1;
  TaskSpec task;
  task.id = TaskId(0);
  task.job = low.id;
  task.duration = Seconds(60);
  task.demand = Resources{4.0, GiB(5)};
  task.priority = 1;
  task.memory_write_rate = 0.02;
  low.tasks.push_back(task);
  w.jobs.push_back(low);

  JobSpec high = low;
  high.id = JobId(1);
  high.submit_time = Seconds(30);
  high.priority = 9;
  high.tasks[0].id = TaskId(1);
  high.tasks[0].job = high.id;
  high.tasks[0].priority = 9;
  w.jobs.push_back(high);
  return w;
}

SimulationResult RunScenario(const SchedulerConfig& config) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(1, Resources{4.0, GiB(16)}, config.medium);
  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(TwoJobWorkload());
  return scheduler.Run();
}

TEST(NvramMedium, FasterThanPmfsFileSystem) {
  const StorageMedium pmfs = StorageMedium::Nvm();
  const StorageMedium nvram = StorageMedium::NvramMemory();
  EXPECT_GT(nvram.write_bw, pmfs.write_bw);
  EXPECT_GT(nvram.read_bw, pmfs.read_bw);
  EXPECT_EQ(nvram.access_latency, 0);
}

TEST(NvramMode, MemoryCheckpointBeatsPmfsOnOverhead) {
  SchedulerConfig pmfs;
  pmfs.policy = PreemptionPolicy::kCheckpoint;
  pmfs.medium = StorageMedium::Nvm();
  const SimulationResult file_result = RunScenario(pmfs);

  SchedulerConfig nvram = pmfs;
  nvram.medium = StorageMedium::NvramMemory();
  const SimulationResult mem_result = RunScenario(nvram);

  EXPECT_GT(mem_result.checkpoints, 0);
  EXPECT_LT(mem_result.total_dump_time, file_result.total_dump_time);
  EXPECT_LT(mem_result.wasted_core_hours, file_result.wasted_core_hours);
}

TEST(NvramMode, ShadowBufferingShrinksDumps) {
  SchedulerConfig base;
  base.policy = PreemptionPolicy::kCheckpoint;
  base.medium = StorageMedium::NvramMemory();
  const SimulationResult plain = RunScenario(base);

  SchedulerConfig shadow = base;
  shadow.shadow_buffering = true;
  shadow.shadow_sync_bw = GBps(2);
  const SimulationResult shadowed = RunScenario(shadow);

  ASSERT_GT(plain.checkpoints, 0);
  ASSERT_GT(shadowed.checkpoints, 0);
  // 30 s of background mirroring at 2 GB/s covers the entire 5 GiB image:
  // only metadata remains to dump.
  EXPECT_LT(shadowed.total_checkpoint_bytes_written,
            plain.total_checkpoint_bytes_written / 4);
}

TEST(NvramMode, ShadowDumpNeverNegative) {
  SchedulerConfig shadow;
  shadow.policy = PreemptionPolicy::kCheckpoint;
  shadow.medium = StorageMedium::NvramMemory();
  shadow.shadow_buffering = true;
  shadow.shadow_sync_bw = GBps(100);  // absurdly fast mirror
  const SimulationResult result = RunScenario(shadow);
  ASSERT_GT(result.checkpoints, 0);
  // Metadata still has to be written.
  EXPECT_GE(result.total_checkpoint_bytes_written,
            result.checkpoints * 512 * kKiB);
}

TEST(NvramMode, LazyRestoreResumesAlmostInstantly) {
  SchedulerConfig eager;
  eager.policy = PreemptionPolicy::kCheckpoint;
  eager.medium = StorageMedium::NvramMemory();
  const SimulationResult eager_result = RunScenario(eager);

  SchedulerConfig lazy = eager;
  lazy.lazy_restore = true;
  const SimulationResult lazy_result = RunScenario(lazy);

  ASSERT_GT(eager_result.local_restores + eager_result.remote_restores, 0);
  ASSERT_GT(lazy_result.local_restores + lazy_result.remote_restores, 0);
  EXPECT_LT(lazy_result.total_restore_time, eager_result.total_restore_time);
}

TEST(NvramMode, FullStackImprovesLowPriorityResponse) {
  SchedulerConfig kill;
  kill.policy = PreemptionPolicy::kKill;
  kill.medium = StorageMedium::NvramMemory();
  const SimulationResult kill_result = RunScenario(kill);

  SchedulerConfig nvram;
  nvram.policy = PreemptionPolicy::kCheckpoint;
  nvram.medium = StorageMedium::NvramMemory();
  nvram.shadow_buffering = true;
  nvram.lazy_restore = true;
  const SimulationResult nvram_result = RunScenario(nvram);

  const auto low = static_cast<size_t>(PriorityBand::kFree);
  const auto high = static_cast<size_t>(PriorityBand::kProduction);
  EXPECT_LT(nvram_result.job_response_by_band[low].Mean(),
            kill_result.job_response_by_band[low].Mean());
  // With near-free suspend/resume the high-priority job matches kill.
  EXPECT_NEAR(nvram_result.job_response_by_band[high].Mean(),
              kill_result.job_response_by_band[high].Mean(), 2.0);
}

}  // namespace
}  // namespace ckpt
