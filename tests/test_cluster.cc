#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "power/energy.h"

namespace ckpt {
namespace {

TEST(Resources, FitsInRespectsBothDimensions) {
  Resources avail{4.0, GiB(8)};
  EXPECT_TRUE((Resources{4.0, GiB(8)}.FitsIn(avail)));
  EXPECT_TRUE((Resources{1.0, GiB(1)}.FitsIn(avail)));
  EXPECT_FALSE((Resources{5.0, GiB(1)}.FitsIn(avail)));
  EXPECT_FALSE((Resources{1.0, GiB(9)}.FitsIn(avail)));
}

TEST(Resources, Arithmetic) {
  Resources a{2.0, GiB(4)};
  Resources b{1.0, GiB(2)};
  const Resources sum = a + b;
  EXPECT_DOUBLE_EQ(sum.cpus, 3.0);
  EXPECT_EQ(sum.memory, GiB(6));
  const Resources diff = sum - b;
  EXPECT_DOUBLE_EQ(diff.cpus, a.cpus);
  EXPECT_EQ(diff.memory, a.memory);
}

TEST(Resources, ZeroDetection) {
  EXPECT_TRUE(Resources{}.IsZero());
  EXPECT_FALSE((Resources{0.5, 0}.IsZero()));
}

TEST(PowerModel, LinearInUtilization) {
  PowerModel model{100.0, 300.0};
  EXPECT_DOUBLE_EQ(model.Watts(0.0), 100.0);
  EXPECT_DOUBLE_EQ(model.Watts(1.0), 300.0);
  EXPECT_DOUBLE_EQ(model.Watts(0.5), 200.0);
}

TEST(EnergyMeter, IntegratesOverTime) {
  EnergyMeter meter(PowerModel{100.0, 300.0});
  meter.Add(0.5, Hours(1));  // 200 W for 1 h = 0.2 kWh
  EXPECT_NEAR(meter.kwh(), 0.2, 1e-6);
  meter.AddCores(8.0, 16.0, Hours(1));  // another 0.2 kWh
  EXPECT_NEAR(meter.kwh(), 0.4, 1e-6);
}

TEST(EnergyMeter, OvercommitClampsUtilization) {
  EnergyMeter meter(PowerModel{100.0, 300.0});
  meter.AddCores(32.0, 16.0, Hours(1));
  EXPECT_NEAR(meter.kwh(), 0.3, 1e-6);
}

class NodeTest : public ::testing::Test {
 protected:
  Simulator sim_;
  Node node_{&sim_, NodeId(0), Resources{16.0, GiB(32)},
             StorageMedium::Ssd(), PowerModel{100.0, 300.0}};
};

TEST_F(NodeTest, AllocateReleaseCycle) {
  EXPECT_TRUE(node_.Allocate({8.0, GiB(16)}));
  EXPECT_DOUBLE_EQ(node_.Available().cpus, 8.0);
  EXPECT_FALSE(node_.Allocate({10.0, GiB(1)}));
  node_.Release({8.0, GiB(16)});
  EXPECT_DOUBLE_EQ(node_.Available().cpus, 16.0);
}

TEST_F(NodeTest, EnergyAccruesWithUtilization) {
  ASSERT_TRUE(node_.Allocate({16.0, 0}));  // fully busy
  sim_.ScheduleAt(Hours(1), [] {});
  sim_.Run();
  node_.SyncEnergy();
  EXPECT_NEAR(node_.EnergyKwh(), 0.3, 1e-3);  // 300 W for 1 h
  EXPECT_EQ(node_.BusyCoreTime(), 16 * Hours(1));
}

TEST_F(NodeTest, IdleNodeStillBurnsIdlePower) {
  sim_.ScheduleAt(Hours(2), [] {});
  sim_.Run();
  node_.SyncEnergy();
  EXPECT_NEAR(node_.EnergyKwh(), 0.2, 1e-3);  // 100 W for 2 h
}

TEST(ClusterTest, FindFitSpreadsRoundRobin) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(3, {4.0, GiB(8)}, StorageMedium::Hdd());
  Node* a = cluster.FindFit({4.0, GiB(8)});
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->Allocate({4.0, GiB(8)}));
  Node* b = cluster.FindFit({4.0, GiB(8)});
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->id(), b->id());
}

TEST(ClusterTest, FindFitNullWhenFull) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(2, {1.0, GiB(1)}, StorageMedium::Hdd());
  for (Node* node : cluster.nodes()) {
    ASSERT_TRUE(node->Allocate({1.0, GiB(1)}));
  }
  EXPECT_EQ(cluster.FindFit({0.5, 0}), nullptr);
}

TEST(ClusterTest, CapacityTotals) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(4, {16.0, GiB(32)}, StorageMedium::Nvm());
  EXPECT_DOUBLE_EQ(cluster.TotalCapacity().cpus, 64.0);
  EXPECT_EQ(cluster.TotalCapacity().memory, GiB(128));
  cluster.node(NodeId(1)).Allocate({3.0, GiB(2)});
  EXPECT_DOUBLE_EQ(cluster.TotalUsed().cpus, 3.0);
}

}  // namespace
}  // namespace ckpt
