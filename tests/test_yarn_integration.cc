#include "yarn/yarn_cluster.h"

#include <gtest/gtest.h>

#include "obs/observability.h"
#include "trace/facebook_workload.h"

namespace ckpt {
namespace {

// Small two-job workload mirroring the paper's sensitivity scenario, sized
// for a 2-node YARN cluster.
Workload TwoJobYarnWorkload(int low_tasks, int high_tasks) {
  Workload w;
  JobSpec low;
  low.id = JobId(0);
  low.submit_time = 0;
  low.priority = 1;
  for (int i = 0; i < low_tasks; ++i) {
    TaskSpec t;
    t.id = TaskId(i);
    t.job = low.id;
    t.duration = Seconds(60);
    t.demand = Resources{1.0, MiB(1800)};
    t.priority = 1;
    t.memory_write_rate = 0.02;
    low.tasks.push_back(t);
  }
  w.jobs.push_back(low);

  JobSpec high;
  high.id = JobId(1);
  high.submit_time = Seconds(30);
  high.priority = 9;
  for (int i = 0; i < high_tasks; ++i) {
    TaskSpec t;
    t.id = TaskId(100 + i);
    t.job = high.id;
    t.duration = Seconds(60);
    t.demand = Resources{1.0, MiB(1800)};
    t.priority = 9;
    t.memory_write_rate = 0.02;
    high.tasks.push_back(t);
  }
  w.jobs.push_back(high);
  return w;
}

YarnConfig SmallConfig(PreemptionPolicy policy, StorageMedium medium) {
  YarnConfig config;
  config.num_nodes = 2;
  config.containers_per_node = 4;
  config.policy = policy;
  config.medium = std::move(medium);
  return config;
}

TEST(YarnIntegration, AllJobsCompleteUnderEveryPolicy) {
  for (PreemptionPolicy policy :
       {PreemptionPolicy::kWait, PreemptionPolicy::kKill,
        PreemptionPolicy::kCheckpoint, PreemptionPolicy::kAdaptive}) {
    YarnCluster yarn(SmallConfig(policy, StorageMedium::Nvm()));
    const YarnResult result = yarn.RunWorkload(TwoJobYarnWorkload(8, 8));
    EXPECT_EQ(result.jobs_completed, 2) << PolicyName(policy);
    EXPECT_EQ(result.tasks_completed, 16) << PolicyName(policy);
  }
}

TEST(YarnIntegration, ObservabilityMatchesResultCounters) {
  Observability obs;
  YarnConfig config = SmallConfig(PreemptionPolicy::kCheckpoint,
                                  StorageMedium::Nvm());
  config.obs = &obs;
  YarnCluster yarn(config);
  const YarnResult result = yarn.RunWorkload(TwoJobYarnWorkload(8, 8));
  ASSERT_GT(result.checkpoints, 0);

  // Metric totals must agree with the AM-side statistics.
  std::int64_t dump_count = 0;
  std::int64_t decision_count = 0;
  std::int64_t preempt_count = 0;
  std::int64_t dump_spans = 0;
  for (int n = 0; n < config.num_nodes; ++n) {
    const MetricLabels node_labels{{"node", std::to_string(n)}};
    for (const char* mode : {"full", "incremental"}) {
      dump_count += obs.metrics()
                        .GetCounter("ckpt.dump.count",
                                    {{"node", std::to_string(n)},
                                     {"mode", mode}})
                        ->value();
    }
    preempt_count +=
        obs.metrics().GetCounter("rm.preempt_events", node_labels)->value();
  }
  for (const char* action :
       {"kill", "checkpoint_full", "checkpoint_incremental"}) {
    decision_count += obs.metrics()
                          .GetCounter("policy.decisions",
                                      {{"policy", "Checkpoint"},
                                       {"action", action}})
                          ->value();
  }
  EXPECT_EQ(dump_count, result.checkpoints);
  // A decision is made for each preempt notice that still found its task
  // running; under this policy every decision starts a dump.
  EXPECT_EQ(decision_count, result.checkpoints);
  // The RM counts dispatched notices; the AM may see fewer (tasks that
  // completed or changed state before the RPC landed decide nothing).
  EXPECT_GE(preempt_count, result.preempt_events);

  // Each completed checkpoint shows up as one ckpt.dump span.
  for (const TraceRecord& event : obs.tracer().SortedEvents()) {
    if (event.name == "ckpt.dump") dump_spans++;
  }
  EXPECT_EQ(dump_spans, result.checkpoints);
  EXPECT_EQ(obs.tracer().open_spans(), 0u);  // no leaked spans at drain
}

TEST(YarnIntegration, ObservabilityDoesNotPerturbSimulation) {
  YarnConfig config = SmallConfig(PreemptionPolicy::kAdaptive,
                                  StorageMedium::Ssd());
  YarnCluster plain(config);
  const YarnResult without = plain.RunWorkload(TwoJobYarnWorkload(8, 8));

  Observability obs;
  config.obs = &obs;
  YarnCluster traced(config);
  const YarnResult with_obs = traced.RunWorkload(TwoJobYarnWorkload(8, 8));

  EXPECT_EQ(with_obs.preempt_events, without.preempt_events);
  EXPECT_EQ(with_obs.checkpoints, without.checkpoints);
  EXPECT_EQ(with_obs.kills, without.kills);
  EXPECT_EQ(with_obs.makespan, without.makespan);
  EXPECT_DOUBLE_EQ(with_obs.wasted_core_hours, without.wasted_core_hours);
}

TEST(YarnIntegration, KillPolicyKillsAndNeverCheckpoints) {
  YarnCluster yarn(SmallConfig(PreemptionPolicy::kKill, StorageMedium::Nvm()));
  const YarnResult result = yarn.RunWorkload(TwoJobYarnWorkload(8, 8));
  EXPECT_GT(result.kills, 0);
  EXPECT_EQ(result.checkpoints, 0);
  EXPECT_GT(result.lost_work_core_hours, 0.0);
}

TEST(YarnIntegration, CheckpointPolicySavesProgress) {
  YarnCluster yarn(
      SmallConfig(PreemptionPolicy::kCheckpoint, StorageMedium::Nvm()));
  const YarnResult result = yarn.RunWorkload(TwoJobYarnWorkload(8, 8));
  EXPECT_GT(result.checkpoints, 0);
  EXPECT_EQ(result.kills, 0);
  EXPECT_EQ(result.restores, result.checkpoints);
  EXPECT_GT(result.overhead_core_hours, 0.0);
  EXPECT_DOUBLE_EQ(result.lost_work_core_hours, 0.0);
}

TEST(YarnIntegration, CheckpointNvmBeatsKillOnLowPriorityResponse) {
  YarnCluster kill_yarn(
      SmallConfig(PreemptionPolicy::kKill, StorageMedium::Nvm()));
  const YarnResult kill = kill_yarn.RunWorkload(TwoJobYarnWorkload(8, 8));

  YarnCluster chk_yarn(
      SmallConfig(PreemptionPolicy::kCheckpoint, StorageMedium::Nvm()));
  const YarnResult chk = chk_yarn.RunWorkload(TwoJobYarnWorkload(8, 8));

  EXPECT_LT(chk.low_priority_job_responses.Mean(),
            kill.low_priority_job_responses.Mean());
  EXPECT_LT(chk.wasted_core_hours, kill.wasted_core_hours);
}

TEST(YarnIntegration, AdaptiveOnHddAvoidsCheckpointingYoungTasks) {
  // Preempt hits tasks with ~30 s progress; on HDD a 1.8 GiB dump+restore
  // costs ~95 s, so Algorithm 1 kills.
  YarnCluster yarn(SmallConfig(PreemptionPolicy::kAdaptive, StorageMedium::Hdd()));
  const YarnResult result = yarn.RunWorkload(TwoJobYarnWorkload(8, 8));
  EXPECT_GT(result.kills, 0);
  EXPECT_EQ(result.checkpoints, 0);
}

TEST(YarnIntegration, AdaptiveOnNvmCheckpoints) {
  YarnCluster yarn(SmallConfig(PreemptionPolicy::kAdaptive, StorageMedium::Nvm()));
  const YarnResult result = yarn.RunWorkload(TwoJobYarnWorkload(8, 8));
  EXPECT_GT(result.checkpoints, 0);
  EXPECT_EQ(result.kills, 0);
}

TEST(YarnIntegration, WaitPolicyHasNoPreemptionSideEffects) {
  YarnCluster yarn(SmallConfig(PreemptionPolicy::kWait, StorageMedium::Hdd()));
  const YarnResult result = yarn.RunWorkload(TwoJobYarnWorkload(8, 8));
  EXPECT_EQ(result.preempt_events, 0);
  EXPECT_EQ(result.kills, 0);
  EXPECT_EQ(result.checkpoints, 0);
  EXPECT_DOUBLE_EQ(result.wasted_core_hours, 0.0);
}

TEST(YarnIntegration, RepeatPreemptionUsesIncrementalDumps) {
  // Two production bursts hit the same long-running low-priority tasks.
  Workload w;
  JobSpec low;
  low.id = JobId(0);
  low.priority = 1;
  for (int i = 0; i < 8; ++i) {
    TaskSpec t;
    t.id = TaskId(i);
    t.job = low.id;
    t.duration = Seconds(600);
    t.demand = Resources{1.0, MiB(1800)};
    t.priority = 1;
    t.memory_write_rate = 0.01;
    low.tasks.push_back(t);
  }
  w.jobs.push_back(low);
  for (int burst = 0; burst < 2; ++burst) {
    JobSpec high;
    high.id = JobId(1 + burst);
    high.submit_time = Seconds(60 + 180 * burst);
    high.priority = 9;
    for (int i = 0; i < 8; ++i) {
      TaskSpec t;
      t.id = TaskId(100 + burst * 10 + i);
      t.job = high.id;
      t.duration = Seconds(30);
      t.demand = Resources{1.0, MiB(1800)};
      t.priority = 9;
      high.tasks.push_back(t);
    }
    w.jobs.push_back(high);
  }

  YarnCluster yarn(
      SmallConfig(PreemptionPolicy::kCheckpoint, StorageMedium::Nvm()));
  const YarnResult result = yarn.RunWorkload(w);
  EXPECT_EQ(result.jobs_completed, 3);
  EXPECT_GT(result.incremental_checkpoints, 0);
}

TEST(YarnIntegration, FacebookWorkloadSmokeAcrossMedia) {
  FacebookWorkloadConfig fb;
  fb.total_jobs = 10;
  fb.total_tasks = 400;
  fb.cluster_containers = 48;
  // Bring the production bursts forward so they land while low-priority
  // work still occupies the small cluster.
  fb.production_period = Seconds(90);
  const Workload w = GenerateFacebookWorkload(fb);

  double kill_waste = -1;
  for (MediaKind kind : {MediaKind::kHdd, MediaKind::kNvm}) {
    YarnConfig config;
    config.num_nodes = 2;
    config.containers_per_node = 24;
    config.medium = MediumFor(kind);
    config.policy = PreemptionPolicy::kKill;
    YarnCluster kill_yarn(config);
    const YarnResult kill = kill_yarn.RunWorkload(w);
    EXPECT_EQ(kill.jobs_completed, static_cast<std::int64_t>(w.jobs.size()));
    EXPECT_GT(kill.preempt_events, 0) << MediaName(kind);
    kill_waste = kill.wasted_core_hours;

    config.policy = PreemptionPolicy::kAdaptive;
    YarnCluster adaptive_yarn(config);
    const YarnResult adaptive = adaptive_yarn.RunWorkload(w);
    EXPECT_EQ(adaptive.jobs_completed,
              static_cast<std::int64_t>(w.jobs.size()));
    if (kind == MediaKind::kNvm) {
      // Fast media: adaptive checkpointing cuts wastage versus kill.
      EXPECT_LT(adaptive.wasted_core_hours, kill_waste);
    }
  }
}

TEST(YarnIntegration, DeterministicForSameSeed) {
  const Workload w = TwoJobYarnWorkload(8, 8);
  YarnCluster a(SmallConfig(PreemptionPolicy::kAdaptive, StorageMedium::Ssd()));
  YarnCluster b(SmallConfig(PreemptionPolicy::kAdaptive, StorageMedium::Ssd()));
  const YarnResult ra = a.RunWorkload(w);
  const YarnResult rb = b.RunWorkload(w);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.checkpoints, rb.checkpoints);
  EXPECT_DOUBLE_EQ(ra.all_job_responses.Mean(), rb.all_job_responses.Mean());
}

}  // namespace
}  // namespace ckpt
