#include "scheduler/policy.h"

#include <gtest/gtest.h>

namespace ckpt {
namespace {

TEST(Algorithm1, OverheadFormulaMatchesPaper) {
  // overhead = size/bw_write + size/bw_read + queue_time (Algorithm 1).
  CheckpointCost cost;
  cost.dump_bytes = GiB(1);
  cost.restore_bytes = GiB(1);
  cost.write_bw = MBps(100);
  cost.read_bw = MBps(200);
  cost.dump_queue_time = Seconds(2);
  const SimDuration overhead = EstimateCheckpointOverhead(cost);
  const double expected =
      ToGiB(GiB(1)) * 1073741824.0 / 100e6 +  // dump
      ToGiB(GiB(1)) * 1073741824.0 / 200e6 +  // restore
      2.0;
  EXPECT_NEAR(ToSeconds(overhead), expected, 0.01);
}

TEST(Algorithm1, KillWhenProgressBelowOverhead) {
  EXPECT_EQ(DecidePreemption(Seconds(10), Seconds(60), false),
            PreemptAction::kKill);
}

TEST(Algorithm1, CheckpointWhenProgressExceedsOverhead) {
  EXPECT_EQ(DecidePreemption(Seconds(120), Seconds(60), false),
            PreemptAction::kCheckpointFull);
}

TEST(Algorithm1, IncrementalWhenPriorImageExists) {
  EXPECT_EQ(DecidePreemption(Seconds(120), Seconds(60), true),
            PreemptAction::kCheckpointIncremental);
}

TEST(Algorithm1, BoundaryGoesToKill) {
  // progress == overhead: the paper checkpoints only when progress exceeds.
  EXPECT_EQ(DecidePreemption(Seconds(60), Seconds(60), false),
            PreemptAction::kKill);
}

TEST(Algorithm1, ThresholdScalesDecision) {
  // progress 90s, overhead 60s: checkpoint at k=1, kill at k=2.
  EXPECT_EQ(DecidePreemption(Seconds(90), Seconds(60), false, 1.0),
            PreemptAction::kCheckpointFull);
  EXPECT_EQ(DecidePreemption(Seconds(90), Seconds(60), false, 2.0),
            PreemptAction::kKill);
  EXPECT_EQ(DecidePreemption(Seconds(31), Seconds(60), false, 0.5),
            PreemptAction::kCheckpointFull);
}

TEST(Algorithm2, RestartWithoutImage) {
  EXPECT_EQ(DecideRestore(false, Seconds(1), Seconds(100)),
            RestoreChoice::kRestart);
}

TEST(Algorithm2, LocalWhenCheaper) {
  EXPECT_EQ(DecideRestore(true, Seconds(5), Seconds(8)), RestoreChoice::kLocal);
}

TEST(Algorithm2, RemoteWhenLocalQueued) {
  // Local restore stuck behind a long checkpoint queue loses to remote.
  RestoreCost cost;
  cost.image_bytes = GiB(2);
  cost.read_bw = MBps(100);
  cost.net_bw = GBps(1);
  cost.local_queue_time = Seconds(60);
  cost.remote_queue_time = 0;
  const SimDuration local = EstimateLocalRestore(cost);
  const SimDuration remote = EstimateRemoteRestore(cost);
  EXPECT_LT(remote, local);
  EXPECT_EQ(DecideRestore(true, local, remote), RestoreChoice::kRemote);
}

TEST(Algorithm2, TieGoesLocal) {
  EXPECT_EQ(DecideRestore(true, Seconds(5), Seconds(5)), RestoreChoice::kLocal);
}

TEST(Algorithm2, RemoteAddsNetworkTerm) {
  RestoreCost cost;
  cost.image_bytes = GiB(1);
  cost.read_bw = MBps(100);
  cost.net_bw = GBps(1);
  EXPECT_EQ(EstimateRemoteRestore(cost) - EstimateLocalRestore(cost),
            TransferTime(GiB(1), GBps(1)));
}

TEST(PolicyNames, AllDistinct) {
  EXPECT_STREQ(PolicyName(PreemptionPolicy::kWait), "Wait");
  EXPECT_STREQ(PolicyName(PreemptionPolicy::kKill), "Kill");
  EXPECT_STREQ(PolicyName(PreemptionPolicy::kCheckpoint), "Checkpoint");
  EXPECT_STREQ(PolicyName(PreemptionPolicy::kAdaptive), "Adaptive");
}

// Property sweep: the adaptive decision is monotone in progress — once the
// progress is large enough to checkpoint, more progress never flips back to
// kill.
class AdaptiveMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(AdaptiveMonotoneTest, MonotoneInProgress) {
  const SimDuration overhead = Seconds(GetParam());
  bool seen_checkpoint = false;
  for (int s = 0; s <= 300; s += 5) {
    const PreemptAction action =
        DecidePreemption(Seconds(s), overhead, false);
    if (action != PreemptAction::kKill) seen_checkpoint = true;
    if (seen_checkpoint) {
      EXPECT_NE(action, PreemptAction::kKill) << "flipped back at s=" << s;
    }
  }
  EXPECT_TRUE(seen_checkpoint);
}

INSTANTIATE_TEST_SUITE_P(OverheadSweep, AdaptiveMonotoneTest,
                         ::testing::Values(1.0, 10.0, 60.0, 240.0));

}  // namespace
}  // namespace ckpt
