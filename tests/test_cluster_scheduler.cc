#include "scheduler/cluster_scheduler.h"

#include <gtest/gtest.h>

#include <memory>

#include "obs/observability.h"
#include "trace/google_trace.h"

namespace ckpt {
namespace {

// The paper's S3.3.3 two-job scenario: a low-priority job runs for 30 s on a
// single node before a high-priority job of the same shape arrives and
// triggers preemption.
struct TwoJobResult {
  double high_response = 0;  // seconds
  double low_response = 0;
  SimulationResult sim;
};

TwoJobResult RunTwoJobScenario(PreemptionPolicy policy,
                               StorageMedium medium,
                               double threshold = 1.0,
                               Observability* obs = nullptr) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(1, Resources{4.0, GiB(16)}, medium);

  SchedulerConfig config;
  config.policy = policy;
  config.medium = medium;
  config.adaptive_threshold = threshold;
  config.obs = obs;

  Workload workload;
  {
    JobSpec low;
    low.id = JobId(0);
    low.submit_time = 0;
    low.priority = 1;
    TaskSpec task;
    task.id = TaskId(0);
    task.job = low.id;
    task.duration = Seconds(60);
    task.demand = Resources{4.0, GiB(5)};
    task.priority = 1;
    task.memory_write_rate = 0.02;
    low.tasks.push_back(task);
    workload.jobs.push_back(low);

    JobSpec high = low;
    high.id = JobId(1);
    high.submit_time = Seconds(30);
    high.priority = 9;
    high.tasks[0].id = TaskId(1);
    high.tasks[0].job = high.id;
    high.tasks[0].priority = 9;
    workload.jobs.push_back(high);
  }

  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(workload);
  TwoJobResult out;
  out.sim = scheduler.Run();
  out.low_response =
      out.sim
          .job_response_by_band[static_cast<size_t>(PriorityBand::kFree)]
          .Mean();
  out.high_response =
      out.sim
          .job_response_by_band[static_cast<size_t>(PriorityBand::kProduction)]
          .Mean();
  return out;
}

TEST(TwoJobScenario, WaitPolicyNeverPreempts) {
  const TwoJobResult r = RunTwoJobScenario(PreemptionPolicy::kWait,
                                           StorageMedium::Nvm());
  EXPECT_EQ(r.sim.preemptions, 0);
  EXPECT_EQ(r.sim.jobs_completed, 2);
  // High-priority waits the low job's remaining 30 s, then runs 60 s.
  EXPECT_NEAR(r.high_response, 90.0, 1.0);
  EXPECT_NEAR(r.low_response, 60.0, 1.0);
  EXPECT_NEAR(r.sim.wasted_core_hours, 0.0, 1e-6);
}

TEST(TwoJobScenario, KillGivesHighPriorityBestResponse) {
  const TwoJobResult r = RunTwoJobScenario(PreemptionPolicy::kKill,
                                           StorageMedium::Nvm());
  EXPECT_EQ(r.sim.kills, 1);
  EXPECT_EQ(r.sim.checkpoints, 0);
  // High starts immediately at 30 s.
  EXPECT_NEAR(r.high_response, 60.0, 1.0);
  // Low re-runs from scratch after high finishes: 90 + 60 = 150 s response.
  EXPECT_NEAR(r.low_response, 150.0, 1.5);
  // Lost work: 30 s on 4 cores.
  EXPECT_NEAR(r.sim.lost_work_core_hours, 30.0 * 4 / 3600, 0.002);
}

TEST(TwoJobScenario, CheckpointOnNvmBeatsKillForLowPriority) {
  const TwoJobResult kill = RunTwoJobScenario(PreemptionPolicy::kKill,
                                              StorageMedium::Nvm());
  const TwoJobResult chk = RunTwoJobScenario(PreemptionPolicy::kCheckpoint,
                                             StorageMedium::Nvm());
  EXPECT_EQ(chk.sim.checkpoints, 1);
  EXPECT_EQ(chk.sim.local_restores + chk.sim.remote_restores, 1);
  // Dump takes ~3 s, so the high job's response is only slightly worse.
  EXPECT_LT(chk.high_response, kill.high_response + 6.0);
  // The low job resumes instead of rerunning: clearly better than kill.
  EXPECT_LT(chk.low_response, kill.low_response - 15.0);
  EXPECT_LT(chk.sim.wasted_core_hours, kill.sim.wasted_core_hours);
}

TEST(TwoJobScenario, CheckpointOnHddHurtsHighPriority) {
  const TwoJobResult chk = RunTwoJobScenario(PreemptionPolicy::kCheckpoint,
                                             StorageMedium::Hdd());
  // A 5 GiB dump at ~32 MB/s stalls the high job for minutes: worse than
  // simply waiting the 30 s (response 90 s).
  EXPECT_GT(chk.high_response, 150.0);
}

TEST(TwoJobScenario, AdaptiveKillsOnSlowStorage) {
  const TwoJobResult adaptive = RunTwoJobScenario(PreemptionPolicy::kAdaptive,
                                                  StorageMedium::Hdd());
  // Overhead (~minutes) exceeds the 30 s of progress: Algorithm 1 kills.
  EXPECT_EQ(adaptive.sim.kills, 1);
  EXPECT_EQ(adaptive.sim.checkpoints, 0);
  const TwoJobResult kill = RunTwoJobScenario(PreemptionPolicy::kKill,
                                              StorageMedium::Hdd());
  EXPECT_NEAR(adaptive.high_response, kill.high_response, 1.0);
}

TEST(TwoJobScenario, AdaptiveCheckpointsOnFastStorage) {
  const TwoJobResult adaptive = RunTwoJobScenario(PreemptionPolicy::kAdaptive,
                                                  StorageMedium::Nvm());
  // ~5 s overhead < 30 s progress: Algorithm 1 checkpoints.
  EXPECT_EQ(adaptive.sim.checkpoints, 1);
  EXPECT_EQ(adaptive.sim.kills, 0);
}

TEST(TwoJobScenario, AdaptiveTracksBetterOfKillAndCheckpoint) {
  for (const StorageMedium& medium :
       {StorageMedium::Hdd(), StorageMedium::Ssd(), StorageMedium::Nvm()}) {
    const TwoJobResult kill =
        RunTwoJobScenario(PreemptionPolicy::kKill, medium);
    const TwoJobResult chk =
        RunTwoJobScenario(PreemptionPolicy::kCheckpoint, medium);
    const TwoJobResult adaptive =
        RunTwoJobScenario(PreemptionPolicy::kAdaptive, medium);
    const double best_low = std::min(kill.low_response, chk.low_response);
    const double best_high = std::min(kill.high_response, chk.high_response);
    EXPECT_LE(adaptive.low_response, best_low * 1.05 + 1.0) << medium.name;
    EXPECT_LE(adaptive.high_response, best_high * 1.05 + 1.0) << medium.name;
  }
}

TEST(TwoJobScenario, ThresholdKnobFlipsAdaptiveDecision) {
  // On NVM the stock threshold checkpoints; an absurdly high threshold
  // forces the kill path instead.
  const TwoJobResult strict = RunTwoJobScenario(PreemptionPolicy::kAdaptive,
                                                StorageMedium::Nvm(), 50.0);
  EXPECT_EQ(strict.sim.kills, 1);
  EXPECT_EQ(strict.sim.checkpoints, 0);
}

TEST(TwoJobScenario, EnergyOrderingMatchesFig4c) {
  const TwoJobResult wait =
      RunTwoJobScenario(PreemptionPolicy::kWait, StorageMedium::Nvm());
  const TwoJobResult kill =
      RunTwoJobScenario(PreemptionPolicy::kKill, StorageMedium::Nvm());
  // Wait wastes no cycles; kill repeats 30 s of work.
  EXPECT_LT(wait.sim.energy_kwh, kill.sim.energy_kwh);
}

TEST(TwoJobScenario, ObservabilityRecordsVictimDecision) {
  Observability obs;
  const TwoJobResult r = RunTwoJobScenario(PreemptionPolicy::kAdaptive,
                                           StorageMedium::Nvm(), 1.0, &obs);
  ASSERT_GE(r.sim.preemptions, 1);
  // Every victim decision produced a counter tick and a trace instant with
  // Algorithm 1's terms.
  std::int64_t decisions = 0;
  for (const char* action :
       {"kill", "checkpoint_full", "checkpoint_incremental"}) {
    decisions += obs.metrics()
                     .GetCounter("policy.decisions",
                                 {{"policy", "Adaptive"}, {"action", action}})
                     ->value();
  }
  EXPECT_EQ(decisions, r.sim.preemptions);
  std::int64_t instants = 0;
  bool has_terms = false;
  for (const TraceRecord& event : obs.tracer().SortedEvents()) {
    if (event.name != "policy.decision") continue;
    instants++;
    for (const TraceArg& arg : event.args) {
      if (arg.key == "unsaved_progress_s") has_terms = true;
    }
  }
  EXPECT_EQ(instants, r.sim.preemptions);
  EXPECT_TRUE(has_terms);
}

TEST(TwoJobScenario, ObservabilityDoesNotPerturbResults) {
  Observability obs;
  const TwoJobResult with_obs = RunTwoJobScenario(
      PreemptionPolicy::kCheckpoint, StorageMedium::Ssd(), 1.0, &obs);
  const TwoJobResult without = RunTwoJobScenario(PreemptionPolicy::kCheckpoint,
                                                 StorageMedium::Ssd());
  EXPECT_EQ(with_obs.sim.preemptions, without.sim.preemptions);
  EXPECT_EQ(with_obs.sim.checkpoints, without.sim.checkpoints);
  EXPECT_DOUBLE_EQ(with_obs.high_response, without.high_response);
  EXPECT_DOUBLE_EQ(with_obs.low_response, without.low_response);
  EXPECT_DOUBLE_EQ(with_obs.sim.wasted_core_hours, without.sim.wasted_core_hours);
}

TEST(TwoJobScenario, DeterministicAcrossRuns) {
  const TwoJobResult a = RunTwoJobScenario(PreemptionPolicy::kAdaptive,
                                           StorageMedium::Ssd());
  const TwoJobResult b = RunTwoJobScenario(PreemptionPolicy::kAdaptive,
                                           StorageMedium::Ssd());
  EXPECT_DOUBLE_EQ(a.high_response, b.high_response);
  EXPECT_DOUBLE_EQ(a.low_response, b.low_response);
  EXPECT_EQ(a.sim.makespan, b.sim.makespan);
}

// A task preempted twice should dump incrementally the second time.
TEST(ClusterScheduler, SecondPreemptionIsIncremental) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(1, Resources{4.0, GiB(16)}, StorageMedium::Nvm());

  SchedulerConfig config;
  config.policy = PreemptionPolicy::kCheckpoint;
  config.medium = StorageMedium::Nvm();

  Workload workload;
  JobSpec low;
  low.id = JobId(0);
  low.priority = 1;
  TaskSpec task;
  task.id = TaskId(0);
  task.job = low.id;
  task.duration = Seconds(300);
  task.demand = Resources{4.0, GiB(4)};
  task.priority = 1;
  task.memory_write_rate = 0.02;
  low.tasks.push_back(task);
  workload.jobs.push_back(low);

  for (int i = 0; i < 2; ++i) {
    JobSpec high;
    high.id = JobId(1 + i);
    high.submit_time = Seconds(30 + 120 * i);
    high.priority = 9;
    TaskSpec ht = task;
    ht.id = TaskId(1 + i);
    ht.job = high.id;
    ht.duration = Seconds(20);
    ht.priority = 9;
    high.tasks.push_back(ht);
    workload.jobs.push_back(high);
  }

  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(workload);
  const SimulationResult result = scheduler.Run();
  EXPECT_EQ(result.jobs_completed, 3);
  EXPECT_EQ(result.checkpoints, 2);
  EXPECT_EQ(result.incremental_checkpoints, 1);
  // The incremental layer is far smaller than a second full image.
  EXPECT_LT(result.total_checkpoint_bytes_written,
            2 * (GiB(4) + MiB(1)));
}

TEST(ClusterScheduler, LocalOnlyCheckpointsPinRestore) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(2, Resources{4.0, GiB(16)}, StorageMedium::Ssd());

  SchedulerConfig config;
  config.policy = PreemptionPolicy::kCheckpoint;
  config.medium = StorageMedium::Ssd();
  config.checkpoint_to_dfs = false;  // stock CRIU

  Workload workload;
  JobSpec low;
  low.id = JobId(0);
  low.priority = 1;
  for (int i = 0; i < 2; ++i) {
    TaskSpec task;
    task.id = TaskId(i);
    task.job = low.id;
    task.duration = Seconds(120);
    task.demand = Resources{4.0, GiB(2)};
    task.priority = 1;
    low.tasks.push_back(task);
  }
  workload.jobs.push_back(low);

  JobSpec high;
  high.id = JobId(1);
  high.submit_time = Seconds(30);
  high.priority = 9;
  for (int i = 0; i < 2; ++i) {
    TaskSpec task;
    task.id = TaskId(2 + i);
    task.job = high.id;
    task.duration = Seconds(30);
    task.demand = Resources{4.0, GiB(2)};
    task.priority = 9;
    high.tasks.push_back(task);
  }
  workload.jobs.push_back(high);

  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(workload);
  const SimulationResult result = scheduler.Run();
  EXPECT_EQ(result.jobs_completed, 2);
  EXPECT_EQ(result.remote_restores, 0);  // images are local-only
  EXPECT_EQ(result.local_restores, result.checkpoints);
}

TEST(ClusterScheduler, AllTasksCompleteUnderChurn) {
  // Heavier mixed workload on a small cluster: conservation check.
  GoogleTraceConfig tconfig;
  tconfig.sample_jobs = 120;
  tconfig.seed = 99;
  Workload workload = GoogleTraceGenerator(tconfig).GenerateWorkloadSample();
  // Compress arrivals into one hour to force contention.
  for (JobSpec& job : workload.jobs) job.submit_time /= 24;

  for (PreemptionPolicy policy :
       {PreemptionPolicy::kKill, PreemptionPolicy::kCheckpoint,
        PreemptionPolicy::kAdaptive}) {
    Simulator sim;
    Cluster cluster(&sim);
    cluster.AddNodes(8, Resources{16.0, GiB(64)}, StorageMedium::Ssd());
    SchedulerConfig config;
    config.policy = policy;
    config.medium = StorageMedium::Ssd();
    ClusterScheduler scheduler(&sim, &cluster, config);
    scheduler.Submit(workload);
    const SimulationResult result = scheduler.Run();
    EXPECT_EQ(result.tasks_completed, workload.TotalTasks())
        << PolicyName(policy);
    EXPECT_EQ(result.jobs_completed,
              static_cast<std::int64_t>(workload.jobs.size()))
        << PolicyName(policy);
    EXPECT_GE(result.wasted_core_hours, 0.0);
    EXPECT_GT(result.energy_kwh, 0.0);
    if (policy == PreemptionPolicy::kKill) {
      EXPECT_EQ(result.checkpoints, 0);
    }
  }
}

}  // namespace
}  // namespace ckpt
