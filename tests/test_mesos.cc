#include "mesos/mesos.h"

#include <gtest/gtest.h>

#include <memory>

#include "dfs/dfs.h"

namespace ckpt {
namespace {

// Full harness: master + engine over a DFS store on a small cluster.
struct MesosHarness {
  Simulator sim;
  Cluster cluster{&sim};
  std::unique_ptr<NetworkModel> net;
  std::unique_ptr<DfsCluster> dfs;
  std::unique_ptr<DfsStore> store;
  std::unique_ptr<CheckpointEngine> engine;
  std::unique_ptr<MesosMaster> master;

  explicit MesosHarness(int nodes = 2,
                        PreemptionPolicy policy = PreemptionPolicy::kAdaptive) {
    cluster.AddNodes(nodes, Resources{4.0, GiB(8)}, StorageMedium::Nvm());
    net = std::make_unique<NetworkModel>(&sim, NetworkConfig{});
    DfsConfig dfs_config;
    dfs_config.replication = 1;
    dfs = std::make_unique<DfsCluster>(&sim, net.get(), dfs_config);
    for (Node* node : cluster.nodes()) {
      net->AddNode(node->id());
      dfs->AddDataNode(node->id(), &node->storage());
    }
    store = std::make_unique<DfsStore>(dfs.get());
    engine = std::make_unique<CheckpointEngine>(&sim, store.get());
    MesosConfig config;
    config.policy = policy;
    master = std::make_unique<MesosMaster>(&sim, &cluster, config);
  }
};

BatchFrameworkConfig SmallBatch(int tasks, SimDuration duration,
                                PreemptionPolicy policy) {
  BatchFrameworkConfig config;
  config.num_tasks = tasks;
  config.task_duration = duration;
  config.task_demand = Resources{1.0, GiB(2)};
  config.policy = policy;
  return config;
}

TEST(Mesos, SingleFrameworkRunsToCompletion) {
  MesosHarness h;
  BatchFramework fw(&h.sim, h.master.get(), h.engine.get(), "batch",
                    SmallBatch(8, Seconds(30), PreemptionPolicy::kAdaptive),
                    nullptr);
  h.master->RegisterFramework(&fw, 1);
  fw.Start();
  h.sim.Run();
  EXPECT_TRUE(fw.Done());
  EXPECT_EQ(fw.stats().tasks_done, 8);
  EXPECT_EQ(fw.stats().revocations, 0);
  // 8 tasks fit the 8 slots: one wave of ~30 s.
  EXPECT_NEAR(ToSeconds(fw.finish_time()), 30.0, 2.0);
}

TEST(Mesos, OffersAreSentAndConsumed) {
  MesosHarness h;
  BatchFramework fw(&h.sim, h.master.get(), h.engine.get(), "batch",
                    SmallBatch(4, Seconds(10), PreemptionPolicy::kKill),
                    nullptr);
  h.master->RegisterFramework(&fw, 1);
  fw.Start();
  h.sim.Run();
  EXPECT_GT(h.master->offers_sent(), 0);
  EXPECT_EQ(fw.stats().launches, 4);
}

TEST(Mesos, TwoFrameworksShareTheCluster) {
  MesosHarness h;
  BatchFramework a(&h.sim, h.master.get(), h.engine.get(), "a",
                   SmallBatch(6, Seconds(60), PreemptionPolicy::kAdaptive),
                   nullptr);
  BatchFramework b(&h.sim, h.master.get(), h.engine.get(), "b",
                   SmallBatch(6, Seconds(60), PreemptionPolicy::kAdaptive),
                   nullptr);
  h.master->RegisterFramework(&a, 1);
  h.master->RegisterFramework(&b, 1);
  a.Start();
  b.Start();
  h.sim.Run();
  EXPECT_TRUE(a.Done());
  EXPECT_TRUE(b.Done());
  // Equal weights: neither framework revokes the other.
  EXPECT_EQ(h.master->revocations_sent(), 0);
}

TEST(Mesos, HighWeightFrameworkRevokesLowWeightTasks) {
  MesosHarness h;
  BatchFramework low(&h.sim, h.master.get(), h.engine.get(), "low",
                     SmallBatch(8, Minutes(5), PreemptionPolicy::kAdaptive),
                     nullptr);
  h.master->RegisterFramework(&low, 1);
  low.Start();
  h.sim.Run(Seconds(30));  // low occupies everything

  BatchFramework prod(&h.sim, h.master.get(), h.engine.get(), "prod",
                      SmallBatch(4, Seconds(30), PreemptionPolicy::kAdaptive),
                      nullptr);
  h.master->RegisterFramework(&prod, 10);
  prod.Start();
  h.sim.Run();

  EXPECT_TRUE(low.Done());
  EXPECT_TRUE(prod.Done());
  EXPECT_GE(h.master->revocations_sent(), 4);
  EXPECT_GE(low.stats().revocations, 4);
  // Production finished long before the 5-minute batch tasks would have
  // drained on their own.
  EXPECT_LT(ToSeconds(prod.finish_time()), 120.0);
}

TEST(Mesos, AdaptiveRevocationCheckpointsProgressedTasks) {
  MesosHarness h;
  BatchFramework low(&h.sim, h.master.get(), h.engine.get(), "low",
                     SmallBatch(8, Minutes(5), PreemptionPolicy::kAdaptive),
                     nullptr);
  h.master->RegisterFramework(&low, 1);
  low.Start();
  h.sim.Run(Minutes(2));  // two minutes of progress at stake

  BatchFramework prod(&h.sim, h.master.get(), h.engine.get(), "prod",
                      SmallBatch(8, Seconds(30), PreemptionPolicy::kAdaptive),
                      nullptr);
  h.master->RegisterFramework(&prod, 10);
  prod.Start();
  h.sim.Run();

  // On NVM, two minutes of progress dwarfs the dump cost: Algorithm 1
  // checkpoints every victim and nothing is re-executed.
  EXPECT_GT(low.stats().checkpoints, 0);
  EXPECT_EQ(low.stats().kills, 0);
  EXPECT_EQ(low.stats().lost_work, 0);
  // Restores may outnumber checkpoints: a restore aborted by a fresh
  // revocation notice leaves the image intact and is retried later.
  EXPECT_GE(low.stats().restores, low.stats().checkpoints);
}

TEST(Mesos, KillPolicyRevocationLosesWork) {
  MesosHarness h(2, PreemptionPolicy::kKill);
  BatchFramework low(&h.sim, h.master.get(), h.engine.get(), "low",
                     SmallBatch(8, Minutes(5), PreemptionPolicy::kKill),
                     nullptr);
  h.master->RegisterFramework(&low, 1);
  low.Start();
  h.sim.Run(Minutes(2));

  BatchFramework prod(&h.sim, h.master.get(), h.engine.get(), "prod",
                      SmallBatch(8, Seconds(30), PreemptionPolicy::kKill),
                      nullptr);
  h.master->RegisterFramework(&prod, 10);
  prod.Start();
  h.sim.Run();

  EXPECT_GT(low.stats().kills, 0);
  EXPECT_GE(ToSeconds(low.stats().lost_work), 100.0);  // ~2 min x victims
  EXPECT_TRUE(low.Done());
}

TEST(Mesos, DeclinedOffersBackOffAndRetry) {
  // A framework that declines everything until a flag flips.
  class PickyFramework : public MesosFramework {
   public:
    explicit PickyFramework(MesosMaster* master) : master_(master) {}
    void OnOffer(const ResourceOffer& offer) override {
      ++offers_seen;
      if (!accept) return;  // decline
      master_->LaunchTask(this, offer, Resources{1.0, GiB(1)});
      ++launched;
    }
    void OnRevoke(std::int64_t) override {}
    const char* name() const override { return "picky"; }
    MesosMaster* master_;
    bool accept = false;
    int offers_seen = 0;
    int launched = 0;
  };

  MesosHarness h;
  PickyFramework fw(h.master.get());
  h.master->RegisterFramework(&fw, 1);
  h.master->RequestResources(&fw, Resources{1.0, GiB(1)});
  h.sim.Run(Seconds(12));
  EXPECT_GE(fw.offers_seen, 2);  // re-offered after the 5 s backoffs
  EXPECT_GT(h.master->offers_declined(), 0);
  fw.accept = true;
  h.sim.Run(Seconds(30));
  EXPECT_EQ(fw.launched, 1);
}

TEST(Mesos, ShareAccountingTracksAllocations) {
  MesosHarness h;
  BatchFramework fw(&h.sim, h.master.get(), h.engine.get(), "batch",
                    SmallBatch(4, Minutes(5), PreemptionPolicy::kAdaptive),
                    nullptr);
  h.master->RegisterFramework(&fw, 1);
  fw.Start();
  h.sim.Run(Seconds(10));
  // 4 of 8 cluster cores allocated.
  EXPECT_NEAR(h.master->FrameworkShare(&fw), 0.5, 1e-9);
}

}  // namespace
}  // namespace ckpt
