// Parameterized property sweeps over the DFS: replication factors, block
// sizes and cluster sizes must all preserve the core invariants.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "dfs/dfs.h"

namespace ckpt {
namespace {

struct DfsFixture {
  Simulator sim;
  std::unique_ptr<NetworkModel> net;
  std::vector<std::unique_ptr<StorageDevice>> devices;
  std::unique_ptr<DfsCluster> dfs;

  DfsFixture(int nodes, int replication, Bytes block_size) {
    net = std::make_unique<NetworkModel>(&sim, NetworkConfig{});
    DfsConfig config;
    config.replication = replication;
    config.block_size = block_size;
    dfs = std::make_unique<DfsCluster>(&sim, net.get(), config);
    for (int i = 0; i < nodes; ++i) {
      net->AddNode(NodeId(i));
      devices.push_back(std::make_unique<StorageDevice>(
          &sim, StorageMedium::Ssd(), "dn" + std::to_string(i)));
      dfs->AddDataNode(NodeId(i), devices.back().get());
    }
  }

  bool Write(const std::string& path, Bytes size, NodeId writer) {
    bool ok = false;
    dfs->Write(path, size, writer, [&](bool w) { ok = w; });
    sim.Run();
    return ok;
  }
  bool Read(const std::string& path, NodeId reader) {
    bool ok = false;
    dfs->Read(path, reader, [&](bool r) { ok = r; });
    sim.Run();
    return ok;
  }
};

class DfsSweep : public ::testing::TestWithParam<
                     std::tuple<int /*nodes*/, int /*replication*/,
                                Bytes /*block size*/>> {};

TEST_P(DfsSweep, WriteReadDeleteLifecycle) {
  const auto [nodes, replication, block_size] = GetParam();
  DfsFixture fx(nodes, replication, block_size);
  const Bytes size = MiB(300);
  ASSERT_TRUE(fx.Write("/f", size, NodeId(0)));
  EXPECT_EQ(fx.dfs->FileSize("/f"), size);
  EXPECT_TRUE(fx.Read("/f", NodeId(nodes - 1)));
  EXPECT_TRUE(fx.dfs->Delete("/f"));
  EXPECT_FALSE(fx.Read("/f", NodeId(0)));
  EXPECT_EQ(fx.dfs->total_stored(), 0);
}

TEST_P(DfsSweep, ReplicationNeverExceedsNodeCount) {
  const auto [nodes, replication, block_size] = GetParam();
  DfsFixture fx(nodes, replication, block_size);
  ASSERT_TRUE(fx.Write("/f", MiB(257), NodeId(0)));
  const FileInfo* info = fx.dfs->Stat("/f");
  ASSERT_NE(info, nullptr);
  const int expected = std::min(replication, nodes);
  for (const BlockInfo& block : info->blocks) {
    EXPECT_EQ(static_cast<int>(block.replicas.size()), expected);
    // All replicas distinct.
    for (size_t i = 0; i < block.replicas.size(); ++i) {
      for (size_t j = i + 1; j < block.replicas.size(); ++j) {
        EXPECT_NE(block.replicas[i], block.replicas[j]);
      }
    }
  }
}

TEST_P(DfsSweep, BlockSizesPartitionTheFile) {
  const auto [nodes, replication, block_size] = GetParam();
  DfsFixture fx(nodes, replication, block_size);
  const Bytes size = MiB(300);
  ASSERT_TRUE(fx.Write("/f", size, NodeId(0)));
  const FileInfo* info = fx.dfs->Stat("/f");
  ASSERT_NE(info, nullptr);
  Bytes total = 0;
  for (const BlockInfo& block : info->blocks) {
    EXPECT_GT(block.size, 0);
    EXPECT_LE(block.size, block_size);
    total += block.size;
  }
  EXPECT_EQ(total, size);
  const auto expected_blocks =
      static_cast<size_t>((size + block_size - 1) / block_size);
  EXPECT_EQ(info->blocks.size(), expected_blocks);
}

TEST_P(DfsSweep, StoredBytesScaleWithReplication) {
  const auto [nodes, replication, block_size] = GetParam();
  DfsFixture fx(nodes, replication, block_size);
  ASSERT_TRUE(fx.Write("/f", MiB(100), NodeId(0)));
  const int effective = std::min(replication, nodes);
  EXPECT_EQ(fx.dfs->total_stored(), effective * MiB(100));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DfsSweep,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(MiB(64), MiB(128))));

TEST(DfsTiming, ReplicationPipelineHidesDepth) {
  // Going from 1 to 2 replicas adds a network hop + second write to the
  // critical path; 2 -> 3 pipelines across distinct links and devices, so
  // the cost stays flat — the behaviour that makes HDFS replication cheap.
  std::vector<double> elapsed;
  for (int replication : {1, 2, 3}) {
    DfsFixture fx(4, replication, MiB(128));
    const SimTime start = fx.sim.Now();
    ASSERT_TRUE(fx.Write("/f", MiB(256), NodeId(0)));
    elapsed.push_back(ToSeconds(fx.sim.Now() - start));
  }
  EXPECT_GT(elapsed[1], elapsed[0] * 1.05);
  EXPECT_NEAR(elapsed[2], elapsed[1], elapsed[1] * 0.15);
}

TEST(DfsTiming, ZeroByteFileIsMetadataOnly) {
  DfsFixture fx(2, 2, MiB(128));
  ASSERT_TRUE(fx.Write("/empty", 0, NodeId(0)));
  EXPECT_EQ(fx.dfs->FileSize("/empty"), 0);
  EXPECT_TRUE(fx.Read("/empty", NodeId(1)));
}

TEST(DfsTiming, ConcurrentReadersLoadBalanceAcrossReplicas) {
  DfsFixture fx(4, 2, MiB(128));
  ASSERT_TRUE(fx.Write("/f", MiB(256), NodeId(0)));
  // Two non-local readers start at once; the least-loaded-replica choice
  // should split them across the two copies rather than serialize on one.
  std::vector<NodeId> readers;
  for (int i = 0; i < 4; ++i) {
    if (!fx.dfs->HasLocalReplica("/f", NodeId(i))) readers.push_back(NodeId(i));
  }
  ASSERT_GE(readers.size(), 2u);
  SimTime done_a = -1, done_b = -1;
  fx.dfs->Read("/f", readers[0], [&](bool ok) {
    ASSERT_TRUE(ok);
    done_a = fx.sim.Now();
  });
  fx.dfs->Read("/f", readers[1], [&](bool ok) {
    ASSERT_TRUE(ok);
    done_b = fx.sim.Now();
  });
  fx.sim.Run();
  // If both reads hit one device they would take ~2x a solo read; balanced
  // reads finish within ~30% of each other.
  const double ratio =
      static_cast<double>(std::max(done_a, done_b)) /
      static_cast<double>(std::min(done_a, done_b));
  EXPECT_LT(ratio, 1.5);
}

}  // namespace
}  // namespace ckpt
