// Parameterized sweeps over the checkpoint engine: page sizes, dirty
// fractions and image sizes; invariants of the dump/restore cycle.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "checkpoint/checkpoint_engine.h"
#include "common/rng.h"
#include "dfs/dfs.h"

namespace ckpt {
namespace {

struct EngineFixture {
  Simulator sim;
  std::unique_ptr<NetworkModel> net;
  std::vector<std::unique_ptr<StorageDevice>> devices;
  std::unique_ptr<DfsCluster> dfs;
  std::unique_ptr<DfsStore> store;
  std::unique_ptr<CheckpointEngine> engine;

  EngineFixture() {
    net = std::make_unique<NetworkModel>(&sim, NetworkConfig{});
    DfsConfig config;
    config.replication = 1;
    dfs = std::make_unique<DfsCluster>(&sim, net.get(), config);
    for (int i = 0; i < 2; ++i) {
      net->AddNode(NodeId(i));
      devices.push_back(std::make_unique<StorageDevice>(
          &sim, StorageMedium::Nvm(), "dn" + std::to_string(i)));
      dfs->AddDataNode(NodeId(i), devices.back().get());
    }
    store = std::make_unique<DfsStore>(dfs.get());
    engine = std::make_unique<CheckpointEngine>(&sim, store.get());
  }

  DumpResult Dump(ProcessState& proc, bool incremental = true) {
    DumpResult out;
    DumpOptions opts;
    opts.incremental = incremental;
    engine->Dump(proc, NodeId(0), opts, [&](DumpResult r) { out = r; });
    sim.Run();
    return out;
  }
  RestoreResult Restore(ProcessState& proc, NodeId node = NodeId(0)) {
    RestoreResult out;
    engine->Restore(proc, node, [&](RestoreResult r) { out = r; });
    sim.Run();
    return out;
  }
};

class PageSizeSweep
    : public ::testing::TestWithParam<std::tuple<Bytes /*page*/,
                                                 double /*dirty fraction*/>> {
};

TEST_P(PageSizeSweep, IncrementalDumpTracksDirtyFraction) {
  const auto [page_size, fraction] = GetParam();
  EngineFixture fx;
  ProcessState proc(TaskId(1), MiB(512), page_size);
  ASSERT_TRUE(fx.Dump(proc).ok);

  Rng rng(42);
  proc.memory.TouchRandomFraction(fraction, rng);
  const DumpResult second = fx.Dump(proc);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.was_incremental);

  // Bytes written ~ dirty fraction of the image (collisions make it a
  // little less), never more than fraction + metadata.
  const double payload_fraction =
      static_cast<double>(second.bytes_written - proc.metadata_bytes) /
      static_cast<double>(MiB(512));
  EXPECT_LE(payload_fraction, fraction * 1.05 + 0.01);
  EXPECT_GE(payload_fraction, fraction * 0.5);
}

TEST_P(PageSizeSweep, RestoreReadsEverythingEverDumped) {
  const auto [page_size, fraction] = GetParam();
  EngineFixture fx;
  ProcessState proc(TaskId(1), MiB(256), page_size);
  Rng rng(7);
  Bytes written = 0;
  DumpResult first = fx.Dump(proc);
  ASSERT_TRUE(first.ok);
  written += first.bytes_written;
  for (int round = 0; round < 3; ++round) {
    proc.memory.TouchRandomFraction(fraction, rng);
    const DumpResult dump = fx.Dump(proc);
    ASSERT_TRUE(dump.ok);
    written += dump.bytes_written;
  }
  const RestoreResult restore = fx.Restore(proc);
  ASSERT_TRUE(restore.ok);
  EXPECT_EQ(restore.bytes_read, written);
  EXPECT_EQ(proc.image_bytes, written);
}

INSTANTIATE_TEST_SUITE_P(
    PagesAndFractions, PageSizeSweep,
    ::testing::Combine(::testing::Values(4 * kKiB, 64 * kKiB, kMiB),
                       ::testing::Values(0.01, 0.1, 0.5)));

class ImageSizeSweep : public ::testing::TestWithParam<Bytes> {};

TEST_P(ImageSizeSweep, DumpDurationLinearInSize) {
  EngineFixture fx;
  ProcessState small(TaskId(1), GetParam(), kMiB);
  ProcessState big(TaskId(2), GetParam() * 4, kMiB);
  const DumpResult a = fx.Dump(small);
  const DumpResult b = fx.Dump(big);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  const double ratio =
      static_cast<double>(b.duration) / static_cast<double>(a.duration);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST_P(ImageSizeSweep, DumpCycleIsIdempotentWithoutWrites) {
  EngineFixture fx;
  ProcessState proc(TaskId(1), GetParam(), kMiB);
  ASSERT_TRUE(fx.Dump(proc).ok);
  // No writes since the first dump: the incremental dump carries only
  // metadata.
  const DumpResult second = fx.Dump(proc);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.was_incremental);
  EXPECT_EQ(second.bytes_written, proc.metadata_bytes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ImageSizeSweep,
                         ::testing::Values(MiB(64), MiB(256), GiB(1)));

TEST(EngineInvariants, DiscardIsIdempotent) {
  EngineFixture fx;
  ProcessState proc(TaskId(1), MiB(64), kMiB);
  ASSERT_TRUE(fx.Dump(proc).ok);
  fx.engine->Discard(proc);
  fx.engine->Discard(proc);  // second discard is a no-op
  EXPECT_FALSE(proc.has_image);
  EXPECT_EQ(fx.dfs->total_stored(), 0);
}

TEST(EngineInvariants, ReplaceExistingForcesFullDump) {
  EngineFixture fx;
  ProcessState proc(TaskId(1), MiB(128), kMiB);
  ASSERT_TRUE(fx.Dump(proc).ok);
  Rng rng(5);
  proc.memory.TouchRandomFraction(0.05, rng);
  DumpOptions opts;
  opts.incremental = true;
  opts.replace_existing = true;
  DumpResult result;
  fx.engine->Dump(proc, NodeId(0), opts, [&](DumpResult r) { result = r; });
  fx.sim.Run();
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.was_incremental);
  EXPECT_EQ(result.bytes_written, MiB(128) + proc.metadata_bytes);
  // The old image was removed: stored size equals the fresh dump.
  EXPECT_EQ(fx.store->StoredSize(proc.image_path), result.bytes_written);
}

TEST(EngineInvariants, TwoProcessesKeepSeparateImages) {
  EngineFixture fx;
  ProcessState a(TaskId(1), MiB(64), kMiB);
  ProcessState b(TaskId(2), MiB(32), kMiB);
  ASSERT_TRUE(fx.Dump(a).ok);
  ASSERT_TRUE(fx.Dump(b).ok);
  EXPECT_NE(a.image_path, b.image_path);
  fx.engine->Discard(a);
  EXPECT_TRUE(fx.store->Exists(b.image_path));
  const RestoreResult restore = fx.Restore(b);
  EXPECT_TRUE(restore.ok);
}

}  // namespace
}  // namespace ckpt
