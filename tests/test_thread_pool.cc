#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace ckpt {
namespace {

TEST(ThreadPool, SpawnsAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1);
  ThreadPool pool4(4);
  EXPECT_EQ(pool4.workers(), 4);
}

TEST(ThreadPool, WaitBlocksUntilAllTasksFinish) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 64);

  // The pool is reusable after a Wait.
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 72);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), 32);
}

// The sweep contract: every index writes only its own slot, so the merged
// result is in index order regardless of scheduling. Run with
// CKPT_SANITIZE=thread this doubles as the data-race check for the
// bench/tool parallel sweeps.
TEST(ThreadPool, ParallelForIndexedFillsDisjointSlots) {
  const std::int64_t n = 500;
  std::vector<std::int64_t> slots(static_cast<size_t>(n), -1);
  ParallelForIndexed(8, n, [&slots](std::int64_t i) {
    slots[static_cast<size_t>(i)] = i * i;
  });
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(slots[static_cast<size_t>(i)], i * i);
  }
}

TEST(ThreadPool, ParallelForIndexedInlineWhenSingleWorker) {
  // workers <= 1 must run inline in index order: this is the reference
  // execution parallel sweeps are compared against for determinism.
  std::vector<std::int64_t> order;
  ParallelForIndexed(1, 16, [&order](std::int64_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPool, ParallelForIndexedHandlesZeroItems) {
  int calls = 0;
  ParallelForIndexed(4, 0, [&calls](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForIndexedMoreItemsThanWorkers) {
  std::atomic<std::int64_t> sum{0};
  ParallelForIndexed(3, 1000, [&sum](std::int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

}  // namespace
}  // namespace ckpt
