#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/analyzer.h"

namespace ckpt {
namespace {

EventTrace SmallTrace() {
  GoogleTraceConfig config;
  config.trace_tasks = 2000;
  return GoogleTraceGenerator(config).GenerateEventTrace();
}

TEST(TraceIo, RoundTripPreservesEvents) {
  const EventTrace original = SmallTrace();
  std::stringstream buffer;
  const std::int64_t written = WriteTraceCsv(original, buffer);
  EXPECT_EQ(written, static_cast<std::int64_t>(original.events.size()));

  const TraceReadResult read = ReadTraceCsv(buffer);
  EXPECT_EQ(read.rows_parsed, written);
  EXPECT_EQ(read.rows_skipped, 0);
  ASSERT_EQ(read.trace.events.size(), original.events.size());
  for (size_t i = 0; i < original.events.size(); ++i) {
    const TraceEvent& a = original.events[i];
    const TraceEvent& b = read.trace.events[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.task, b.task);
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.priority, b.priority);
    EXPECT_EQ(a.latency_class, b.latency_class);
    EXPECT_EQ(a.type, b.type);
    EXPECT_NEAR(a.cpus, b.cpus, 1e-6);
  }
}

TEST(TraceIo, AnalysisSurvivesRoundTrip) {
  const EventTrace original = SmallTrace();
  std::stringstream buffer;
  WriteTraceCsv(original, buffer);
  const TraceReadResult read = ReadTraceCsv(buffer);

  const TraceAnalysis a = AnalyzeTrace(original);
  const TraceAnalysis b = AnalyzeTrace(read.trace);
  EXPECT_DOUBLE_EQ(a.overall_preemption_rate, b.overall_preemption_rate);
  for (size_t band = 0; band < 3; ++band) {
    EXPECT_EQ(a.by_band[band].tasks, b.by_band[band].tasks);
    EXPECT_EQ(a.by_band[band].preempted_tasks, b.by_band[band].preempted_tasks);
  }
}

TEST(TraceIo, ParsesHandWrittenRealFormatRows) {
  // Rows shaped like the public trace (empty machine/user/disk fields).
  std::stringstream in(
      "0,,6251,0,,0,,2,9,0.5,0.06,0.0001,\n"
      "1000000,,6251,0,4155527081,1,,2,9,0.5,0.06,0.0001,\n"
      "90000000,,6251,0,4155527081,2,,2,9,0.5,0.06,0.0001,\n"
      "95000000,,6251,0,4155527081,1,,2,9,0.5,0.06,0.0001,\n"
      "180000000,,6251,0,4155527081,4,,2,9,0.5,0.06,0.0001,\n");
  const TraceReadResult read = ReadTraceCsv(in);
  EXPECT_EQ(read.rows_parsed, 5);
  EXPECT_EQ(read.rows_skipped, 0);
  ASSERT_EQ(read.trace.events.size(), 5u);
  EXPECT_EQ(read.trace.events[2].type, TraceEventType::kEvict);
  EXPECT_EQ(read.trace.events[0].priority, 9);
  EXPECT_EQ(read.trace.events[0].latency_class, 2);
  EXPECT_DOUBLE_EQ(read.trace.events[0].cpus, 0.5);

  const TraceAnalysis analysis = AnalyzeTrace(read.trace);
  EXPECT_EQ(analysis.by_band[static_cast<size_t>(PriorityBand::kProduction)]
                .preempted_tasks,
            1);
}

TEST(TraceIo, SkipsIrrelevantEventTypes) {
  std::stringstream in(
      "0,,1,0,,0,,0,1,0.5,0.1,,\n"
      "10,,1,0,,3,,0,1,0.5,0.1,,\n"   // FAIL: skipped
      "20,,1,0,,5,,0,1,0.5,0.1,,\n"   // KILL: skipped
      "30,,1,0,,7,,0,1,0.5,0.1,,\n"   // UPDATE_PENDING: skipped
      "40,,1,0,,4,,0,1,0.5,0.1,,\n");
  const TraceReadResult read = ReadTraceCsv(in);
  EXPECT_EQ(read.rows_parsed, 2);
  EXPECT_EQ(read.rows_skipped, 3);
}

TEST(TraceIo, TolerantOfMalformedLines) {
  std::stringstream in(
      "# comment line\n"
      "\n"
      "not,a,number,at,all,x,,y,z,w\n"
      "0,,1,0,,0,,0,15,0.5,0.1,,\n"   // priority 15 out of range
      "0,,1,0,,0,,9,1,0.5,0.1,,\n"    // latency class 9 out of range
      "5,,2,0,,0,,1,1,0.25,0.1,,\n"); // valid
  const TraceReadResult read = ReadTraceCsv(in);
  EXPECT_EQ(read.rows_parsed, 1);
  // Comments and blank lines are ignored silently; the malformed row and
  // the two out-of-range rows are counted as skipped.
  EXPECT_EQ(read.rows_skipped, 3);
  ASSERT_EQ(read.trace.events.size(), 1u);
  EXPECT_EQ(read.trace.events[0].time, 5);
}

TEST(TraceIo, ReadSortsOutOfOrderRows) {
  std::stringstream in(
      "50,,1,0,,4,,0,1,0.5,0.1,,\n"
      "10,,1,0,,1,,0,1,0.5,0.1,,\n"
      "0,,1,0,,0,,0,1,0.5,0.1,,\n");
  const TraceReadResult read = ReadTraceCsv(in);
  ASSERT_EQ(read.trace.events.size(), 3u);
  EXPECT_EQ(read.trace.events[0].type, TraceEventType::kSubmit);
  EXPECT_EQ(read.trace.events[2].type, TraceEventType::kFinish);
  EXPECT_EQ(read.trace.span, kDay);  // rounded up to whole days
}

TEST(TraceIo, FileRoundTrip) {
  const EventTrace original = SmallTrace();
  const std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  ASSERT_TRUE(WriteTraceCsvFile(original, path));
  const TraceReadResult read = ReadTraceCsvFile(path);
  EXPECT_EQ(read.trace.events.size(), original.events.size());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsEmpty) {
  const TraceReadResult read = ReadTraceCsvFile("/nonexistent/trace.csv");
  EXPECT_TRUE(read.trace.events.empty());
  EXPECT_EQ(read.rows_parsed, 0);
}

}  // namespace
}  // namespace ckpt
