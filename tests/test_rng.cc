#include "common/rng.h"

#include <gtest/gtest.h>

namespace ckpt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(5.0, 10.0);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 10.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, ParetoRespectsScaleMinimum) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(30.0, 1.2), 30.0);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng(19);
  int beyond_10x = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Pareto(1.0, 1.0) > 10.0) ++beyond_10x;
  }
  // P(X > 10) = 0.1 for alpha=1.
  EXPECT_NEAR(static_cast<double>(beyond_10x) / n, 0.1, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(42);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace ckpt
