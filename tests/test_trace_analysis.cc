#include "trace/analyzer.h"

#include <gtest/gtest.h>

namespace ckpt {
namespace {

// One shared trace: generation + analysis of 200k tasks takes ~a second, so
// build it once.
const TraceAnalysis& Analysis() {
  static const TraceAnalysis analysis = [] {
    GoogleTraceConfig config;
    config.trace_tasks = 120'000;
    EventTrace trace = GoogleTraceGenerator(config).GenerateEventTrace();
    return AnalyzeTrace(trace);
  }();
  return analysis;
}

TEST(TraceAnalysis, OverallPreemptionRateMatchesPaper) {
  // S2: "an average of 12.4% of scheduled tasks were evicted".
  EXPECT_NEAR(Analysis().overall_preemption_rate, 0.124, 0.02);
}

TEST(TraceAnalysis, Table1BandRates) {
  const auto& free = Analysis().by_band[static_cast<size_t>(PriorityBand::kFree)];
  const auto& middle =
      Analysis().by_band[static_cast<size_t>(PriorityBand::kMiddle)];
  const auto& production =
      Analysis().by_band[static_cast<size_t>(PriorityBand::kProduction)];
  EXPECT_NEAR(free.PercentPreempted(), 20.26, 2.0);
  EXPECT_NEAR(middle.PercentPreempted(), 0.55, 0.3);
  EXPECT_NEAR(production.PercentPreempted(), 1.02, 0.6);
  // Band mix ~ 59.9 / 36.5 / 3.6.
  const double total =
      static_cast<double>(free.tasks + middle.tasks + production.tasks);
  EXPECT_NEAR(free.tasks / total, 0.599, 0.05);
  EXPECT_NEAR(middle.tasks / total, 0.365, 0.05);
  EXPECT_NEAR(production.tasks / total, 0.036, 0.02);
}

TEST(TraceAnalysis, Table2LatencyClassRates) {
  // Table 2: 11.76 / 18.87 / 8.14 / 14.80 % preempted per class.
  const double expected[] = {11.76, 18.87, 8.14, 14.80};
  for (int cls = 0; cls < kNumLatencyClasses; ++cls) {
    const auto& stats = Analysis().by_latency[static_cast<size_t>(cls)];
    EXPECT_GT(stats.tasks, 0) << "class " << cls;
    EXPECT_NEAR(stats.PercentPreempted(), expected[cls],
                expected[cls] * 0.35 + 1.0)
        << "class " << cls;
  }
  // Class mix: class 0 dominates (~79%).
  const double total = static_cast<double>(
      Analysis().by_latency[0].tasks + Analysis().by_latency[1].tasks +
      Analysis().by_latency[2].tasks + Analysis().by_latency[3].tasks);
  EXPECT_NEAR(Analysis().by_latency[0].tasks / total, 0.79, 0.05);
}

TEST(TraceAnalysis, Fig1bLowPriorityDominatesPreemptions) {
  // "preemption of low priority tasks (0-1 priorities) accounts for over
  // 90% of the total preemptions".
  const double low_share = Analysis().preemption_share_by_priority[0] +
                           Analysis().preemption_share_by_priority[1];
  EXPECT_GT(low_share, 90.0);
}

TEST(TraceAnalysis, Fig1cRepeatPreemptionTail) {
  const auto& hist = Analysis().preemption_count_hist;
  std::int64_t preempted = 0;
  for (std::int64_t count : hist) preempted += count;
  ASSERT_GT(preempted, 0);
  // 43.5% preempted more than once; 17% ten times or more.
  const double multi =
      1.0 - static_cast<double>(hist[0]) / static_cast<double>(preempted);
  const double chronic =
      static_cast<double>(hist[9]) / static_cast<double>(preempted);
  EXPECT_NEAR(multi, 0.435, 0.05);
  EXPECT_NEAR(chronic, 0.17, 0.04);
}

TEST(TraceAnalysis, WastedCpuShareApproaches35Percent) {
  // "130k CPU-hours (up to 35% of total usage) could have been wasted".
  EXPECT_GT(Analysis().WastedFraction(), 0.22);
  EXPECT_LT(Analysis().WastedFraction(), 0.45);
}

TEST(TraceAnalysis, DailyRatesCoverAllDays) {
  ASSERT_EQ(Analysis().daily.size(), 29u);
  int active_days = 0;
  for (const auto& day : Analysis().daily) {
    const double low =
        day.rate_by_band[static_cast<size_t>(PriorityBand::kFree)];
    if (low > 0) ++active_days;
    // Low priority evictions per scheduled task each day sit in a sane band.
    EXPECT_LT(low, 1.5);
  }
  EXPECT_GE(active_days, 28);
}

TEST(TraceAnalysis, EventsAreTimeOrdered) {
  GoogleTraceConfig config;
  config.trace_tasks = 5000;
  const EventTrace trace = GoogleTraceGenerator(config).GenerateEventTrace();
  for (size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].time, trace.events[i].time);
  }
}

TEST(TraceAnalysis, EverySubmittedTaskEventuallyFinishes) {
  GoogleTraceConfig config;
  config.trace_tasks = 5000;
  const EventTrace trace = GoogleTraceGenerator(config).GenerateEventTrace();
  std::int64_t submits = 0, finishes = 0;
  for (const TraceEvent& event : trace.events) {
    if (event.type == TraceEventType::kSubmit) ++submits;
    if (event.type == TraceEventType::kFinish) ++finishes;
  }
  EXPECT_EQ(submits, 5000);
  EXPECT_EQ(finishes, 5000);
}

}  // namespace
}  // namespace ckpt
