#include "checkpoint/memory_image.h"

#include <gtest/gtest.h>

namespace ckpt {
namespace {

TEST(MemoryImage, StartsFullyDirtyWithTrackingOff) {
  MemoryImage image(MiB(4), 4 * kKiB);
  EXPECT_FALSE(image.tracking_enabled());
  EXPECT_EQ(image.num_pages(), 1024);
  EXPECT_EQ(image.dirty_pages(), 1024);
  EXPECT_EQ(image.DirtyBytes(), MiB(4));
}

TEST(MemoryImage, DirtyBytesEqualsSizeWhileNotTracking) {
  MemoryImage image(MiB(4), 4 * kKiB);
  // Even after clearing... there is no clearing without tracking; the whole
  // image must be dumped.
  EXPECT_EQ(image.DirtyBytes(), image.size());
}

TEST(MemoryImage, StartTrackingClearsSoftDirtyBits) {
  MemoryImage image(MiB(4), 4 * kKiB);
  image.StartTracking();
  EXPECT_TRUE(image.tracking_enabled());
  EXPECT_EQ(image.dirty_pages(), 0);
  EXPECT_EQ(image.DirtyBytes(), 0);
}

TEST(MemoryImage, TouchRangeMarksCoveredPages) {
  MemoryImage image(MiB(1), 4 * kKiB);
  image.StartTracking();
  image.TouchRange(0, 4 * kKiB);  // exactly one page
  EXPECT_EQ(image.dirty_pages(), 1);
  image.TouchRange(4 * kKiB - 1, 2);  // straddles pages 0 and 1
  EXPECT_EQ(image.dirty_pages(), 2);
  EXPECT_TRUE(image.IsPageDirty(0));
  EXPECT_TRUE(image.IsPageDirty(1));
  EXPECT_FALSE(image.IsPageDirty(2));
}

TEST(MemoryImage, TouchRangeIdempotentOnSamePages) {
  MemoryImage image(MiB(1), 4 * kKiB);
  image.StartTracking();
  image.TouchRange(0, 8 * kKiB);
  image.TouchRange(0, 8 * kKiB);
  EXPECT_EQ(image.dirty_pages(), 2);
}

TEST(MemoryImage, TouchAllDirtiesEverything) {
  MemoryImage image(MiB(1), 4 * kKiB);
  image.StartTracking();
  image.TouchAll();
  EXPECT_EQ(image.dirty_pages(), image.num_pages());
}

TEST(MemoryImage, RandomFractionApproximatesTarget) {
  MemoryImage image(MiB(64), 4 * kKiB);
  image.StartTracking();
  Rng rng(5);
  image.TouchRandomFraction(0.10, rng);
  const double dirty =
      static_cast<double>(image.dirty_pages()) / image.num_pages();
  // ~10% of writes land on distinct pages (few collisions at 10%).
  EXPECT_NEAR(dirty, 0.095, 0.01);
}

TEST(MemoryImage, RepeatedDumpCycleShrinksDirtySet) {
  // The Table-3 scenario: full dump, touch 10%, second dump is ~10x smaller.
  MemoryImage image(GiB(5), kMiB);
  const Bytes first = image.DirtyBytes();
  EXPECT_EQ(first, GiB(5));
  image.StartTracking();  // after first dump
  Rng rng(7);
  image.TouchRandomFraction(0.10, rng);
  const Bytes second = image.DirtyBytes();
  EXPECT_LT(second, first / 8);
  EXPECT_GT(second, first / 14);
}

TEST(MemoryImage, PartialLastPageCapsDirtyBytes) {
  MemoryImage image(4 * kKiB + 100, 4 * kKiB);
  EXPECT_EQ(image.num_pages(), 2);
  image.StartTracking();
  image.TouchAll();
  EXPECT_EQ(image.DirtyBytes(), 4 * kKiB + 100);  // capped at size
}

TEST(MemoryImage, ZeroSizedImage) {
  MemoryImage image(0);
  EXPECT_EQ(image.num_pages(), 0);
  EXPECT_EQ(image.DirtyBytes(), 0);
  image.StartTracking();
  Rng rng(3);
  image.TouchRandomFraction(0.5, rng);  // must not crash
  EXPECT_EQ(image.dirty_pages(), 0);
}

TEST(MemoryImage, TouchRangeZeroLengthIsNoOp) {
  MemoryImage image(MiB(1));
  image.StartTracking();
  image.TouchRange(0, 0);
  image.TouchRange(MiB(1), 0);  // offset == size is fine when length is 0
  EXPECT_EQ(image.dirty_pages(), 0);
  EXPECT_EQ(image.DirtyBytes(), 0);
}

TEST(MemoryImage, TouchRangeStraddlesFinalPartialPage) {
  // 2.5 pages: the final page covers only 2 KiB of address space.
  MemoryImage image(10 * kKiB, 4 * kKiB);
  EXPECT_EQ(image.num_pages(), 3);
  image.StartTracking();
  // Range starts in full page 1 and ends inside the partial final page.
  image.TouchRange(7 * kKiB, 3 * kKiB);
  EXPECT_FALSE(image.IsPageDirty(0));
  EXPECT_TRUE(image.IsPageDirty(1));
  EXPECT_TRUE(image.IsPageDirty(2));
  EXPECT_EQ(image.dirty_pages(), 2);
  // Touching up to exactly the image end lands on the partial page's
  // last valid byte, not past it.
  image.TouchRange(10 * kKiB - 1, 1);
  EXPECT_EQ(image.dirty_pages(), 2);  // already dirty, count unchanged
}

TEST(MemoryImage, TouchRangeBeforeTrackingKeepsEverythingDirty) {
  MemoryImage image(16 * kKiB, 4 * kKiB);
  // Tracking is off: all pages already count as dirty and a touch must
  // not double-count them.
  image.TouchRange(0, 8 * kKiB);
  EXPECT_EQ(image.dirty_pages(), 4);
  EXPECT_EQ(image.DirtyBytes(), 16 * kKiB);  // full dump still required
}

TEST(MemoryImage, DirtyCountMatchesPerPageBits) {
  MemoryImage image(64 * kKiB, 4 * kKiB);
  image.StartTracking();
  image.TouchRange(4 * kKiB, 4 * kKiB);
  image.TouchRange(20 * kKiB, 10 * kKiB);   // pages 5..7
  image.TouchRange(24 * kKiB, 1);           // page 6 again: no recount
  std::int64_t bits = 0;
  for (std::int64_t p = 0; p < image.num_pages(); ++p) {
    if (image.IsPageDirty(p)) ++bits;
  }
  EXPECT_EQ(bits, image.dirty_pages());
  EXPECT_EQ(bits, 4);
}

TEST(MemoryImageDeathTest, TouchRangeBeyondSizeAborts) {
  MemoryImage image(MiB(1));
  EXPECT_DEATH(image.TouchRange(MiB(1) - 10, 100), "");
}

}  // namespace
}  // namespace ckpt
