#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ckpt {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(Simulator, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] {
    ++fired;
    sim.ScheduleAfter(5, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 6);
}

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(100, [&] { ++fired; });
  sim.Run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime inner_fire_time = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(25, [&] { inner_fire_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fire_time, 125);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAt(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.EventsProcessed(), 7);
}

// Regression test for the event-core rewrite: a callback that schedules new
// events at the current instant (delay 0) must see them fire after every
// event already pending at that instant, in schedule order — the scheduler
// relies on this when RunSchedulePass is armed from within a completion
// event.
TEST(Simulator, EventsScheduledAtNowFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(10, [&] {
    order.push_back(0);
    sim.ScheduleAfter(0, [&] { order.push_back(3); });
    sim.ScheduleAfter(0, [&] {
      order.push_back(4);
      sim.ScheduleAt(sim.Now(), [&] { order.push_back(5); });
    });
  });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(10, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(sim.Now(), 10);
}

TEST(Simulator, CancelPreventsCallbackAndIsCountedOut) {
  Simulator sim;
  int fired = 0;
  EventHandle handle = sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  EXPECT_EQ(sim.PendingEvents(), 2);
  EXPECT_TRUE(sim.Cancel(handle));
  EXPECT_FALSE(sim.Cancel(handle));
  EXPECT_EQ(sim.PendingEvents(), 1);
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.EventsProcessed(), 1);
  EXPECT_EQ(sim.Now(), 20);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  EventHandle handle = sim.ScheduleAt(1, [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(handle));
}

TEST(Simulator, CancelingAllEventsLeavesQueueEmpty) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.ScheduleAt(i, [] {}));
  }
  for (const EventHandle& handle : handles) {
    EXPECT_TRUE(sim.Cancel(handle));
  }
  EXPECT_TRUE(sim.Empty());
  EXPECT_EQ(sim.Run(), 0);
}

TEST(SimulatorDeathTest, SchedulingIntoThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(10, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(5, [] {}), "cannot schedule into the past");
}

}  // namespace
}  // namespace ckpt
