#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ckpt {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(Simulator, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] {
    ++fired;
    sim.ScheduleAfter(5, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 6);
}

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(100, [&] { ++fired; });
  sim.Run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime inner_fire_time = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(25, [&] { inner_fire_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fire_time, 125);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAt(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.EventsProcessed(), 7);
}

TEST(SimulatorDeathTest, SchedulingIntoThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(10, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(5, [] {}), "cannot schedule into the past");
}

}  // namespace
}  // namespace ckpt
