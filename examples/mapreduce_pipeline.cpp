// Run a MapReduce analytics pipeline on the YARN-like substrate while a
// production burst preempts it, using adaptive checkpoint-based preemption.
//
//   $ ./build/examples/mapreduce_pipeline
#include <cstdio>

#include "mapreduce/mapreduce.h"

using namespace ckpt;

int main() {
  // A three-stage nightly pipeline (think: sessionize -> join -> aggregate)
  // expressed as three MapReduce jobs submitted back to back.
  std::vector<MapReduceJobSpec> jobs;
  const int maps[] = {32, 24, 12};
  const int reduces[] = {16, 8, 4};
  for (int stage = 0; stage < 3; ++stage) {
    MapReduceJobSpec job;
    job.id = JobId(stage);
    job.submit_time = Minutes(2 * stage);
    job.priority = 1;
    job.num_maps = maps[stage];
    job.num_reduces = reduces[stage];
    job.map_duration = Seconds(45);
    job.reduce_duration = Minutes(3);
    job.map_output_bytes = MiB(192);
    jobs.push_back(job);
  }
  // A production job barges in while the pipeline is mid-flight.
  MapReduceJobSpec production;
  production.id = JobId(10);
  production.submit_time = Minutes(3);
  production.priority = 10;
  production.num_maps = 40;
  production.num_reduces = 0;
  production.map_duration = Seconds(90);
  production.map_output_bytes = 0;
  jobs.push_back(production);

  YarnConfig config;
  config.num_nodes = 2;
  config.containers_per_node = 24;
  config.policy = PreemptionPolicy::kAdaptive;
  config.medium = StorageMedium::Nvm();

  const MapReduceRunResult result = RunMapReduceWorkload(jobs, config);

  std::printf("mapreduce_pipeline | 3-stage pipeline + production burst\n\n");
  std::printf("  jobs completed:     %lld of %zu\n",
              static_cast<long long>(result.jobs_completed), jobs.size());
  std::printf("  maps/reduces done:  %lld / %lld\n",
              static_cast<long long>(result.totals.maps_done),
              static_cast<long long>(result.totals.reduces_done));
  std::printf("  preempt events:     %lld (kills %lld, checkpoints %lld)\n",
              static_cast<long long>(result.totals.preempt_events),
              static_cast<long long>(result.totals.kills),
              static_cast<long long>(result.totals.checkpoints));
  std::printf("  shuffle fetches:    %lld (%s moved)\n",
              static_cast<long long>(result.totals.shuffle_fetches),
              FormatBytes(result.totals.shuffle_bytes_moved).c_str());
  std::printf("  lost work:          %s\n",
              FormatDuration(result.totals.lost_work).c_str());
  std::printf("  per-job responses:  ");
  for (double r : result.job_response_seconds) std::printf("%.1fmin ", r / 60);
  std::printf("\n  makespan:           %s\n",
              FormatDuration(result.makespan).c_str());
  return 0;
}
