// Exercise the CRIU-like engine directly: dump a process to the HDFS-like
// store, dirty part of its memory, dump incrementally, and restore on a
// different node.
//
//   $ ./build/examples/checkpoint_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "checkpoint/checkpoint_engine.h"
#include "common/rng.h"
#include "dfs/dfs.h"
#include "sim/simulator.h"

using namespace ckpt;

int main() {
  Simulator sim;
  NetworkModel net(&sim, NetworkConfig{});
  DfsConfig dfs_config;
  dfs_config.replication = 2;
  DfsCluster dfs(&sim, &net, dfs_config);

  // Three datanodes on SSD.
  std::vector<std::unique_ptr<StorageDevice>> devices;
  for (int i = 0; i < 3; ++i) {
    net.AddNode(NodeId(i));
    devices.push_back(std::make_unique<StorageDevice>(
        &sim, StorageMedium::Ssd(), "dn" + std::to_string(i)));
    dfs.AddDataNode(NodeId(i), devices.back().get());
  }
  DfsStore store(&dfs);
  CheckpointEngine engine(&sim, &store);

  std::printf("checkpoint_demo | 4 GiB process, SSD datanodes, HDFS store\n\n");

  // A process with 4 GiB of memory running on node 0.
  ProcessState proc(TaskId(42), GiB(4), kMiB);

  // 1. First (full) dump.
  engine.Dump(proc, NodeId(0), DumpOptions{}, [&](DumpResult result) {
    std::printf("full dump:        %s in %s (incremental=%d)\n",
                FormatBytes(result.bytes_written).c_str(),
                FormatDuration(result.duration).c_str(),
                result.was_incremental);
  });
  sim.Run();

  // 2. The task runs on and rewrites ~10% of its pages.
  Rng rng(7);
  proc.memory.TouchRandomFraction(0.10, rng);
  std::printf("dirtied:          %s of %s (%lld pages)\n",
              FormatBytes(proc.memory.DirtyBytes()).c_str(),
              FormatBytes(proc.memory.size()).c_str(),
              static_cast<long long>(proc.memory.dirty_pages()));

  // 3. Incremental dump: only the soft-dirty pages go out.
  engine.Dump(proc, NodeId(0), DumpOptions{}, [&](DumpResult result) {
    std::printf("incremental dump: %s in %s (incremental=%d)\n",
                FormatBytes(result.bytes_written).c_str(),
                FormatDuration(result.duration).c_str(),
                result.was_incremental);
  });
  sim.Run();

  std::printf("stored image:     %s (base + layers, replicated x%d)\n",
              FormatBytes(store.StoredSize(proc.image_path)).c_str(),
              dfs_config.replication);

  // 4. Remote restore on node 2 — possible because the image is in the DFS.
  engine.Restore(proc, NodeId(2), [&](RestoreResult result) {
    std::printf("restore on node2: %s read in %s (remote=%d)\n",
                FormatBytes(result.bytes_read).c_str(),
                FormatDuration(result.duration).c_str(), result.was_remote);
  });
  sim.Run();

  // 5. Cleanup.
  engine.Discard(proc);
  std::printf("discarded:        image exists afterwards = %d\n",
              store.Exists(proc.image_path));

  std::printf(
      "\nengine stats: %lld dumps (%lld incremental), %lld restores, "
      "%s written, %s read\n",
      static_cast<long long>(engine.dumps_completed()),
      static_cast<long long>(engine.incremental_dumps()),
      static_cast<long long>(engine.restores_completed()),
      FormatBytes(engine.total_dump_bytes()).c_str(),
      FormatBytes(engine.total_restore_bytes()).c_str());
  return 0;
}
