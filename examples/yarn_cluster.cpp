// Drive the YARN-like layer end to end: ResourceManager, NodeManagers,
// DistributedShell ApplicationMasters with the Preemption Manager, CRIU-like
// engine and HDFS-like store — the paper's S5 architecture.
//
//   $ ./build/examples/yarn_cluster
//
// Runs the Facebook-derived co-location workload twice (stock kill-based
// YARN vs adaptive checkpoint-based preemption on NVM) and prints the
// before/after the paper's abstract headlines.
#include <cstdio>

#include "trace/facebook_workload.h"
#include "yarn/yarn_cluster.h"

using namespace ckpt;

namespace {

YarnResult Run(const Workload& workload, PreemptionPolicy policy,
               MediaKind media) {
  YarnConfig config;
  config.policy = policy;
  config.medium = MediumFor(media);
  if (policy == PreemptionPolicy::kKill) {
    config.victim_order = VictimOrder::kRandom;  // stock behaviour
  }
  YarnCluster yarn(config);
  return yarn.RunWorkload(workload);
}

void Print(const char* name, const YarnResult& result) {
  std::printf("%s\n", name);
  std::printf("  jobs/tasks completed:  %lld / %lld\n",
              static_cast<long long>(result.jobs_completed),
              static_cast<long long>(result.tasks_completed));
  std::printf("  preempt events:        %lld (kills %lld, checkpoints %lld, "
              "incremental %lld)\n",
              static_cast<long long>(result.preempt_events),
              static_cast<long long>(result.kills),
              static_cast<long long>(result.checkpoints),
              static_cast<long long>(result.incremental_checkpoints));
  std::printf("  wasted CPU:            %.2f core-hours\n",
              result.wasted_core_hours);
  std::printf("  energy:                %.2f kWh\n", result.energy_kwh);
  std::printf("  low-pri job response:  %.1f min (mean)\n",
              result.low_priority_job_responses.Mean() / 60.0);
  std::printf("  high-pri job response: %.1f min (mean)\n",
              result.high_priority_job_responses.Mean() / 60.0);
  std::printf("  makespan:              %s\n\n",
              FormatDuration(result.makespan).c_str());
}

}  // namespace

int main() {
  FacebookWorkloadConfig fb;
  fb.total_jobs = 40;
  fb.total_tasks = 3000;  // keep the demo quick; bench_fig8 runs the full 7k
  const Workload workload = GenerateFacebookWorkload(fb);

  std::printf("yarn_cluster | %zu jobs, %lld tasks on 8 nodes x 24 containers\n\n",
              workload.jobs.size(),
              static_cast<long long>(workload.TotalTasks()));

  const YarnResult kill = Run(workload, PreemptionPolicy::kKill, MediaKind::kHdd);
  Print("[stock YARN: kill-based preemption]", kill);

  const YarnResult adaptive =
      Run(workload, PreemptionPolicy::kAdaptive, MediaKind::kNvm);
  Print("[this system: adaptive checkpoint-based preemption on NVM]", adaptive);

  std::printf(
      "improvement: wastage %+.0f%%, energy %+.0f%%, low-pri response %+.0f%%, "
      "high-pri response %+.0f%%\n",
      100.0 * (adaptive.wasted_core_hours / kill.wasted_core_hours - 1.0),
      100.0 * (adaptive.energy_kwh / kill.energy_kwh - 1.0),
      100.0 * (adaptive.low_priority_job_responses.Mean() /
                   kill.low_priority_job_responses.Mean() -
               1.0),
      100.0 * (adaptive.high_priority_job_responses.Mean() /
                   kill.high_priority_job_responses.Mean() -
               1.0));
  return 0;
}
