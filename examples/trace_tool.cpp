// Command-line trace utility:
//
//   trace_tool generate <out.csv> [tasks]   synthesize a Google-like trace
//                                           and write it in task_events CSV
//   trace_tool analyze <in.csv>             run the paper's S2 analysis
//                                           (Fig. 1, Tables 1-2, wasted CPU)
//                                           on a task_events CSV — works on
//                                           the real public trace as well
//
//   $ ./build/examples/trace_tool generate /tmp/trace.csv 50000
//   $ ./build/examples/trace_tool analyze /tmp/trace.csv
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "trace/analyzer.h"
#include "trace/trace_io.h"

using namespace ckpt;

namespace {

int Generate(const char* path, std::int64_t tasks) {
  GoogleTraceConfig config;
  config.trace_tasks = tasks;
  GoogleTraceGenerator generator(config);
  const EventTrace trace = generator.GenerateEventTrace();
  if (!WriteTraceCsvFile(trace, path)) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return 1;
  }
  std::printf("wrote %zu events for %lld tasks to %s\n", trace.events.size(),
              static_cast<long long>(tasks), path);
  return 0;
}

int Analyze(const char* path) {
  const TraceReadResult read = ReadTraceCsvFile(path);
  if (read.trace.events.empty()) {
    std::fprintf(stderr, "error: no parseable events in %s\n", path);
    return 1;
  }
  std::printf("parsed %lld rows (%lld skipped) from %s\n\n",
              static_cast<long long>(read.rows_parsed),
              static_cast<long long>(read.rows_skipped), path);
  const TraceAnalysis analysis = AnalyzeTrace(read.trace);

  std::printf("Table 1 — preempted tasks per priority band\n");
  for (size_t band = 0; band < 3; ++band) {
    const BandStats& stats = analysis.by_band[band];
    std::printf("  %-18s %10lld tasks   %6.2f%% preempted\n",
                BandName(static_cast<PriorityBand>(band)),
                static_cast<long long>(stats.tasks), stats.PercentPreempted());
  }
  std::printf("\nTable 2 — preempted tasks per latency class\n");
  for (int cls = 0; cls < kNumLatencyClasses; ++cls) {
    const BandStats& stats = analysis.by_latency[static_cast<size_t>(cls)];
    std::printf("  class %-13d %10lld tasks   %6.2f%% preempted\n", cls,
                static_cast<long long>(stats.tasks), stats.PercentPreempted());
  }
  std::printf("\nFig 1b — preemption share by priority\n  ");
  for (int p = 0; p <= 11; ++p) {
    std::printf("p%d:%.1f%% ", p,
                analysis.preemption_share_by_priority[static_cast<size_t>(p)]);
  }
  std::printf("\n\nFig 1c — distinct tasks by preemption count\n  ");
  for (int count = 1; count <= 10; ++count) {
    std::printf("%s:%lld ", count == 10 ? ">=10" : std::to_string(count).c_str(),
                static_cast<long long>(
                    analysis.preemption_count_hist[static_cast<size_t>(count - 1)]));
  }
  std::printf(
      "\n\noverall preemption rate: %.2f%%\n"
      "wasted CPU: %.0f of %.0f CPU-hours (%.1f%% of usage)\n",
      100.0 * analysis.overall_preemption_rate, analysis.wasted_cpu_hours,
      analysis.total_cpu_hours, 100.0 * analysis.WastedFraction());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "generate") == 0) {
    return Generate(argv[2], argc > 3 ? std::atoll(argv[3]) : 100'000);
  }
  if (argc >= 3 && std::strcmp(argv[1], "analyze") == 0) {
    return Analyze(argv[2]);
  }
  std::fprintf(stderr,
               "usage:\n  %s generate <out.csv> [tasks]\n  %s analyze <in.csv>\n",
               argv[0], argv[0]);
  return 2;
}
