// Compare the four preemption policies (wait / kill / always-checkpoint /
// adaptive) on a Google-like day of traffic, across the three storage media.
//
//   $ ./build/examples/policy_comparison [num_jobs]
//
// This is the paper's core experiment (S3.3.2) condensed into one program:
// pick a policy and a medium, replay the same workload, and compare waste,
// energy, and per-priority response times.
#include <cstdio>
#include <cstdlib>

#include "cluster/cluster.h"
#include "scheduler/cluster_scheduler.h"
#include "sim/simulator.h"
#include "trace/google_trace.h"

using namespace ckpt;

namespace {

SimulationResult RunPolicy(const Workload& workload, PreemptionPolicy policy,
                           const StorageMedium& medium, int nodes) {
  Simulator sim;
  Cluster cluster(&sim);
  cluster.AddNodes(nodes, Resources{16.0, GiB(64)}, medium);
  SchedulerConfig config;
  config.policy = policy;
  config.medium = medium;
  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(workload);
  return scheduler.Run();
}

}  // namespace

int main(int argc, char** argv) {
  GoogleTraceConfig trace_config;
  trace_config.sample_jobs = argc > 1 ? std::atoi(argv[1]) : 800;
  const Workload workload =
      GoogleTraceGenerator(trace_config).GenerateWorkloadSample();

  // Size the cluster so average demand runs hot (peaks must preempt).
  double core_seconds = 0;
  for (const JobSpec& job : workload.jobs) {
    for (const TaskSpec& task : job.tasks) {
      core_seconds += ToSeconds(task.duration) * task.demand.cpus;
    }
  }
  const int nodes =
      std::max(1, static_cast<int>(core_seconds / ToSeconds(kDay) /
                                   (0.9 * 16.0)));

  std::printf("policy comparison | %zu jobs, %lld tasks, %d nodes\n\n",
              workload.jobs.size(),
              static_cast<long long>(workload.TotalTasks()), nodes);
  std::printf("%-12s %-6s %10s %9s %10s %10s %10s\n", "policy", "medium",
              "waste[ch]", "kWh", "lowRT[s]", "midRT[s]", "highRT[s]");

  for (PreemptionPolicy policy :
       {PreemptionPolicy::kWait, PreemptionPolicy::kKill,
        PreemptionPolicy::kCheckpoint, PreemptionPolicy::kAdaptive}) {
    for (MediaKind kind : {MediaKind::kHdd, MediaKind::kSsd, MediaKind::kNvm}) {
      // Wait and kill never touch storage; print them once.
      if ((policy == PreemptionPolicy::kWait ||
           policy == PreemptionPolicy::kKill) &&
          kind != MediaKind::kHdd) {
        continue;
      }
      const SimulationResult result =
          RunPolicy(workload, policy, MediumFor(kind), nodes);
      std::printf("%-12s %-6s %10.1f %9.1f %10.0f %10.0f %10.0f\n",
                  PolicyName(policy),
                  policy == PreemptionPolicy::kWait ||
                          policy == PreemptionPolicy::kKill
                      ? "-"
                      : MediaName(kind),
                  result.wasted_core_hours, result.energy_kwh,
                  result.job_response_by_band[0].Mean(),
                  result.job_response_by_band[1].Mean(),
                  result.job_response_by_band[2].Mean());
    }
  }
  std::printf(
      "\nReading: checkpointing cuts waste on every medium; the adaptive\n"
      "policy keeps high-priority response near kill-based preemption while\n"
      "protecting low-priority progress.\n");
  return 0;
}
