// Quickstart: build a small cluster, submit two jobs, and watch adaptive
// checkpoint-based preemption (Algorithm 1/2) in action.
//
//   $ ./build/examples/quickstart
//
// A low-priority analytics job occupies the cluster; a production job
// arrives mid-flight. With the adaptive policy the scheduler checkpoints
// victims whose progress outweighs the suspend-resume cost and kills the
// rest, then resumes the checkpointed work once the production burst is
// over.
#include <cstdio>

#include "cluster/cluster.h"
#include "scheduler/cluster_scheduler.h"
#include "sim/simulator.h"
#include "trace/workload.h"

using namespace ckpt;

int main() {
  Simulator sim;

  // Four 16-core nodes with NVM (PMFS-style) checkpoint storage.
  Cluster cluster(&sim);
  cluster.AddNodes(4, Resources{16.0, GiB(64)}, StorageMedium::Nvm());

  SchedulerConfig config;
  config.policy = PreemptionPolicy::kAdaptive;
  config.medium = StorageMedium::Nvm();

  // A 60-task low-priority batch job submitted at t=0...
  Workload workload;
  JobSpec batch;
  batch.id = JobId(0);
  batch.priority = 1;
  for (int i = 0; i < 60; ++i) {
    TaskSpec task;
    task.id = TaskId(i);
    task.job = batch.id;
    task.duration = Minutes(10);
    task.demand = Resources{1.0, GiB(3)};
    task.priority = batch.priority;
    task.memory_write_rate = 0.01;
    batch.tasks.push_back(task);
  }
  workload.jobs.push_back(batch);

  // ...and a production job that needs most of the cluster at t=3min.
  JobSpec production;
  production.id = JobId(1);
  production.submit_time = Minutes(3);
  production.priority = 10;
  for (int i = 0; i < 48; ++i) {
    TaskSpec task;
    task.id = TaskId(100 + i);
    task.job = production.id;
    task.duration = Minutes(2);
    task.demand = Resources{1.0, GiB(2)};
    task.priority = production.priority;
    production.tasks.push_back(task);
  }
  workload.jobs.push_back(production);

  ClusterScheduler scheduler(&sim, &cluster, config);
  scheduler.Submit(workload);
  const SimulationResult result = scheduler.Run();

  std::printf("quickstart: adaptive checkpoint-based preemption on NVM\n\n");
  std::printf("  jobs completed:        %lld\n",
              static_cast<long long>(result.jobs_completed));
  std::printf("  tasks completed:       %lld\n",
              static_cast<long long>(result.tasks_completed));
  std::printf("  preemptions:           %lld (%lld checkpointed, %lld killed)\n",
              static_cast<long long>(result.preemptions),
              static_cast<long long>(result.checkpoints),
              static_cast<long long>(result.kills));
  std::printf("  incremental dumps:     %lld\n",
              static_cast<long long>(result.incremental_checkpoints));
  std::printf("  restores (local/remote): %lld/%lld\n",
              static_cast<long long>(result.local_restores),
              static_cast<long long>(result.remote_restores));
  std::printf("  wasted CPU:            %.2f core-hours (%.1f%% of busy time)\n",
              result.wasted_core_hours, 100.0 * result.WastedFraction());
  std::printf("  energy:                %.2f kWh\n", result.energy_kwh);
  std::printf("  batch job response:    %.1f min\n",
              result.job_response_by_band[0].Mean() / 60.0);
  std::printf("  production response:   %.1f min\n",
              result.job_response_by_band[2].Mean() / 60.0);
  std::printf("  makespan:              %s\n",
              FormatDuration(result.makespan).c_str());
  return 0;
}
